"""AST rules of repro-lint: the repo's determinism and purity invariants.

Every table in this repository must be byte-identical across serial,
``--jobs N`` and fleet execution.  That invariant is easy to break with one
innocuous line — an unseeded draw, a wall-clock read inside a content-hashed
job, an unordered ``set`` feeding a canonical encoder — and such breaks are
only caught today by expensive end-to-end byte-diff tests.  These rules turn
the invariants into merge-time failures:

========  ==================  ====================================================
Rule      Pragma tag          Violation
========  ==================  ====================================================
RPL001    allow-unseeded      global/unseeded randomness outside ``utils/rng.py``
RPL002    allow-wallclock     wall-clock or OS-entropy reads (``time.time``,
                              ``datetime.now``, ``uuid.uuid4``, ``os.urandom``)
RPL003    allow-unordered     unordered ``set`` (or missing ``sort_keys``)
                              feeding ``json.dumps`` / ``stable_hash``
RPL005    allow-blocking      blocking calls inside ``async def``; dropped
                              ``create_task`` results
RPL006    allow-impure        ``register_job`` functions mutating module globals
========  ==================  ====================================================

(RPL004, protocol conformance, is introspection-based and lives in
:mod:`repro.analysis.lint.protocol_schema`.)

Rules are repo-specific by design: they know the sanctioned entry points
(``repro.utils.rng``, ``seed_everything``, generator state save/restore) and
flag everything else.  False positives are expected to be rare and are
silenced line-by-line with the pragmas of
:mod:`repro.analysis.lint.pragmas`, never by disabling a rule globally.
"""

from __future__ import annotations

import ast
from typing import Callable

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.pragmas import PragmaMap, scan_pragmas

__all__ = ["RULES", "RuleInfo", "check_source", "check_file"]


class RuleInfo:
    """Static metadata of one rule (id, pragma tag, summary)."""

    def __init__(self, rule: str, tag: str, summary: str):
        self.rule = rule
        self.tag = tag
        self.summary = summary


RULES: dict[str, RuleInfo] = {
    "RPL001": RuleInfo(
        "RPL001",
        "allow-unseeded",
        "unseeded/global randomness outside the utils/rng.py allowlist",
    ),
    "RPL002": RuleInfo(
        "RPL002",
        "allow-wallclock",
        "wall-clock or OS-entropy read (time.time, datetime.now, uuid, os.urandom)",
    ),
    "RPL003": RuleInfo(
        "RPL003",
        "allow-unordered",
        "unordered collection feeding json.dumps/stable_hash without sorted()",
    ),
    "RPL004": RuleInfo(
        "RPL004",
        "(not suppressible)",
        "wire-protocol message conformance and schema drift",
    ),
    "RPL005": RuleInfo(
        "RPL005",
        "allow-blocking",
        "blocking call inside async def / dropped create_task result",
    ),
    "RPL006": RuleInfo(
        "RPL006",
        "allow-impure",
        "register_job function assigns module globals",
    ),
}

# Files (suffix-matched, '/'-separated) where RPL001 does not apply: the one
# sanctioned home of global-RNG access.
RNG_ALLOWLIST = ("repro/utils/rng.py",)

# np.random attributes that manage state rather than draw from it, plus the
# explicitly-seeded constructors.  ``default_rng`` is allowed only with
# arguments (an argument-less call reads OS entropy).
_NP_RANDOM_ALLOWED = {"get_state", "set_state", "Generator", "SeedSequence", "PCG64"}
# stdlib random attributes allowed outside utils/rng.py (state save/restore).
_STDLIB_RANDOM_ALLOWED = {"getstate", "setstate"}

# Module-function calls that read the wall clock or OS entropy.
_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}
# `from X import Y` pairs equivalent to the calls above.
_WALLCLOCK_IMPORTS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "ctime"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}
# datetime class methods that read the clock (fromtimestamp & co are pure).
_DATETIME_NOW = {"now", "utcnow", "today"}

# Module-level functions that block the event loop when called in async code.
_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
}


def _dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything richer."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` statically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


def _normalised(path: str) -> str:
    return path.replace("\\", "/")


# -- RPL001: unseeded randomness -------------------------------------------------------


def _check_rpl001(tree: ast.AST, path: str) -> list[Finding]:
    if _normalised(path).endswith(RNG_ALLOWLIST):
        return []
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(rule="RPL001", path=path, line=line, message=message))

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in ("random", "numpy.random"):
            names = ", ".join(alias.name for alias in node.names)
            flag(
                node.lineno,
                f"'from {node.module} import {names}' bypasses the seeded-RNG "
                "discipline; accept an np.random.Generator argument or use "
                "repro.utils.rng",
            )
            continue
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if name is None:
            continue
        np_random = None
        for prefix in ("np.random.", "numpy.random."):
            if name.startswith(prefix):
                np_random = name[len(prefix) :]
                break
        if np_random is not None:
            if np_random in _NP_RANDOM_ALLOWED:
                continue
            if np_random == "default_rng":
                if node.args or node.keywords:
                    continue
                flag(
                    node.lineno,
                    "argument-less default_rng() reads OS entropy; derive the "
                    "seed from the job spec (repro.utils.rng.derive_seed)",
                )
                continue
            flag(
                node.lineno,
                f"global numpy RNG call np.random.{np_random}(); pass an "
                "explicit np.random.Generator (repro.utils.rng.RandomState)",
            )
            continue
        if name.startswith("random."):
            attr = name[len("random.") :]
            if attr in _STDLIB_RANDOM_ALLOWED:
                continue
            if attr == "Random" and (node.args or node.keywords):
                continue
            flag(
                node.lineno,
                f"stdlib global RNG call random.{attr}(); library code must "
                "draw from an explicit seeded generator "
                "(repro.utils.rng.seed_everything is the only sanctioned "
                "global-seeding path)",
            )
    return findings


# -- RPL002: wall-clock / entropy ------------------------------------------------------


def _check_rpl002(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(rule="RPL002", path=path, line=line, message=message))

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                if (node.module, alias.name) in _WALLCLOCK_IMPORTS:
                    flag(
                        node.lineno,
                        f"'from {node.module} import {alias.name}' imports a "
                        "wall-clock/entropy source; results hashed by content "
                        "must not depend on it (use repro.utils.clock for "
                        "operator-facing timing)",
                    )
            continue
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if name is None:
            continue
        if name in _WALLCLOCK_CALLS:
            flag(
                node.lineno,
                f"{name}() reads the wall clock / OS entropy inside library "
                "code; job results and canonical manifests must be functions "
                "of the job spec only (time.monotonic/perf_counter are fine "
                "for elapsed timing; repro.utils.clock.wall_clock for "
                "operator-facing timestamps)",
            )
            continue
        parts = name.split(".")
        if parts[0] == "datetime" and parts[-1] in _DATETIME_NOW:
            flag(
                node.lineno,
                f"{name}() reads the wall clock; content-hashed paths must be "
                "deterministic (repro.utils.clock.wall_clock for "
                "operator-facing timestamps)",
            )
    return findings


# -- RPL003: unordered collections feeding canonical encoders -------------------------


def _iter_comprehension_sets(node: ast.expr) -> bool:
    """Whether a comprehension argument iterates over a set expression."""
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
        return any(_is_set_expression(gen.iter) for gen in node.generators)
    return False


def _check_rpl003(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(rule="RPL003", path=path, line=line, message=message))

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if name is None:
            continue
        is_dumps = name == "json.dumps" or name.endswith(".json.dumps")
        is_hash = name == "stable_hash" or name.endswith(".stable_hash")
        if not (is_dumps or is_hash):
            continue
        encoder = "json.dumps" if is_dumps else "stable_hash"
        for arg in node.args:
            if _is_set_expression(arg):
                flag(
                    node.lineno,
                    f"set passed to {encoder}: iteration order is arbitrary; "
                    "wrap it in sorted(...)",
                )
            elif _iter_comprehension_sets(arg):
                flag(
                    node.lineno,
                    f"comprehension over a set feeds {encoder}: iteration "
                    "order is arbitrary; iterate sorted(...) instead",
                )
        if is_dumps:
            if any(kw.arg is None for kw in node.keywords):
                continue  # **kwargs: cannot see sort_keys statically
            sort_keys = next((kw for kw in node.keywords if kw.arg == "sort_keys"), None)
            if sort_keys is None or not (
                isinstance(sort_keys.value, ast.Constant)
                and sort_keys.value.value is True
            ):
                flag(
                    node.lineno,
                    "json.dumps without sort_keys=True: canonical encodings "
                    "must not depend on dict construction order",
                )
    return findings


# -- RPL005: asyncio hygiene -----------------------------------------------------------


def _check_rpl005(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(rule="RPL005", path=path, line=line, message=message))

    def scan(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            # Nested function definitions execute later, under their own
            # rules; do not descend into them (async ones are visited by
            # AsyncVisitor separately).
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Expr) and isinstance(child.value, ast.Call):
                name = _dotted_name(child.value.func) or ""
                if name.split(".")[-1] == "create_task":
                    flag(
                        child.lineno,
                        "create_task(...) result dropped: keep a reference "
                        "and await/cancel it, or the task can be garbage-"
                        "collected mid-flight and its exceptions lost",
                    )
            if isinstance(child, ast.Call):
                name_or_none = _dotted_name(child.func)
                if name_or_none in _BLOCKING_CALLS:
                    flag(
                        child.lineno,
                        f"blocking {name_or_none}() inside async def stalls "
                        "the event loop (heartbeats, lease watchdog); use the "
                        "asyncio equivalent or run_in_executor",
                    )
            scan(child)

    class AsyncVisitor(ast.NodeVisitor):
        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            scan(node)
            # generic_visit reaches async defs nested inside this one (or
            # inside nested sync defs); scan() itself never enters them.
            self.generic_visit(node)

    AsyncVisitor().visit(tree)
    return findings


# -- RPL006: campaign-job purity -------------------------------------------------------


def _is_register_job_decorator(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _dotted_name(node.func) or ""
    return name.split(".")[-1] == "register_job"


def _check_rpl006(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []
    module_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases.add(alias.asname or alias.name.split(".")[0])

    def flag(line: int, message: str) -> None:
        findings.append(Finding(rule="RPL006", path=path, line=line, message=message))

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(_is_register_job_decorator(dec) for dec in node.decorator_list):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Global):
                flag(
                    inner.lineno,
                    f"register_job function {node.name!r} declares "
                    f"'global {', '.join(inner.names)}': job functions must "
                    "be pure (module state diverges between the serial, "
                    "pool and fleet executors)",
                )
            if isinstance(inner, (ast.Assign, ast.AugAssign)):
                targets = inner.targets if isinstance(inner, ast.Assign) else [inner.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_aliases
                    ):
                        flag(
                            inner.lineno,
                            f"register_job function {node.name!r} assigns "
                            f"module attribute {target.value.id}."
                            f"{target.attr}: job functions must not mutate "
                            "module state",
                        )
    return findings


# -- driver ----------------------------------------------------------------------------

_AST_CHECKS: dict[str, Callable[[ast.AST, str], list[Finding]]] = {
    "RPL001": _check_rpl001,
    "RPL002": _check_rpl002,
    "RPL003": _check_rpl003,
    "RPL005": _check_rpl005,
    "RPL006": _check_rpl006,
}


def check_source(source: str, path: str, *, select: set[str] | None = None) -> list[Finding]:
    """Run every AST rule (or the ``select`` subset) over one source string."""
    pragmas, findings = scan_pragmas(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="RPL000",
                path=path,
                line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    for rule, checker in _AST_CHECKS.items():
        if select is not None and rule not in select:
            continue
        for finding in checker(tree, path):
            if not _suppressed(finding, pragmas):
                findings.append(finding)
    if select is not None:
        findings = [f for f in findings if f.rule in select or f.rule == "RPL000"]
    return findings


def _suppressed(finding: Finding, pragmas: PragmaMap) -> bool:
    return pragmas.allows(finding.rule, finding.line)


def check_file(path: str, *, select: set[str] | None = None) -> list[Finding]:
    """Run the AST rules over one file on disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return check_source(source, path, select=select)
