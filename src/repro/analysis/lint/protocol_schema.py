"""RPL004: wire-protocol conformance and schema-drift gate.

Two complementary checks covering both registered message families — the
fleet wire protocol (:mod:`repro.experiments.service.protocol`) and the
telemetry event stream (:mod:`repro.experiments.telemetry.events`):

* **Conformance** (introspection): every :class:`Message` subclass must be a
  frozen dataclass, carry a non-empty ``TYPE_NAME``, list its ``VERSION`` in
  ``SUPPORTED_VERSIONS``, be registered in the decode table, and declare
  only wire-native field types (``str``/``int``/``float``/``dict``).
  Behaviour-only intermediate bases that declare ``ABSTRACT_BASE = True`` in
  their own body (e.g. ``TelemetryEvent``) are exempt — they never appear on
  the wire.

* **Schema snapshot** (drift gate): the canonical wire schema — fields,
  types and version per message — is committed at
  ``tests/golden/protocol_schema.json``.  The checker fails when a message
  changes shape *without* a ``VERSION`` bump (a silent wire break that old
  workers would mis-decode); a shape change accompanied by a version bump
  passes, with a notice to regenerate the snapshot
  (``python -m repro.analysis --update-snapshot``).  Adding or removing a
  message type also requires an intentional snapshot regeneration.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.analysis.lint.findings import Finding

__all__ = [
    "SNAPSHOT_PATH",
    "WIRE_FIELD_TYPES",
    "build_protocol_schema",
    "check_protocol_conformance",
    "compare_schema",
    "load_snapshot",
    "write_snapshot",
]

# Default snapshot location, relative to the repository root.
SNAPSHOT_PATH = Path("tests") / "golden" / "protocol_schema.json"

# Field annotations the wire's decode layer can actually validate
# (wire._FIELD_CHECKS); anything richer belongs inside a dict payload.
WIRE_FIELD_TYPES = ("str", "int", "float", "dict")

_PROTOCOL_PATH = "src/repro/experiments/service/protocol.py"


def _source_path(cls: type) -> str:
    """Repo-relative source path of a message class, for finding locations."""
    module = getattr(cls, "__module__", "") or ""
    if module.startswith("repro."):
        return "src/" + module.replace(".", "/") + ".py"
    return _PROTOCOL_PATH


def _import_message_families() -> None:
    """Import every module that registers messages, so the walk is complete."""
    import repro.experiments.service.protocol  # noqa: F401
    import repro.experiments.telemetry.events  # noqa: F401


def _is_abstract_base(cls: type) -> bool:
    """True for behaviour-only bases declaring ABSTRACT_BASE in their body."""
    return bool(cls.__dict__.get("ABSTRACT_BASE", False))


def _message_classes() -> list[type]:
    """Every concrete Message subclass, transitively, in deterministic order."""
    from repro.experiments.wire import Message

    _import_message_families()
    ordered: list[type] = []
    stack: list[type] = [Message]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            if sub not in ordered:
                ordered.append(sub)
                stack.append(sub)
    return sorted(
        (cls for cls in ordered if not _is_abstract_base(cls)),
        key=lambda cls: (cls.TYPE_NAME, cls.__name__),
    )


def build_protocol_schema() -> dict:
    """Canonical schema of every registered message type.

    The shape is stable and sorted so the snapshot file diffs cleanly::

        {"messages": {"campaign.job.claim": {
            "class": "JobClaim", "version": "100",
            "supported_versions": ["100"],
            "fields": {"attempt": "int", ...}}}}
    """
    from repro.experiments.wire import registered_messages

    _import_message_families()
    messages = {}
    for type_name, cls in sorted(registered_messages().items()):
        fields = {spec.name: str(spec.type) for spec in dataclasses.fields(cls)}
        messages[type_name] = {
            "class": cls.__name__,
            "version": cls.VERSION,
            "supported_versions": sorted(cls.SUPPORTED_VERSIONS),
            "fields": dict(sorted(fields.items())),
        }
    return {"messages": messages}


def check_protocol_conformance() -> list[Finding]:
    """Introspect both message families and report every RPL004 violation."""
    from repro.experiments.wire import registered_messages

    _import_message_families()
    findings: list[Finding] = []

    registry = registered_messages()
    by_class = {cls: name for name, cls in registry.items()}
    for cls in _message_classes():
        label = cls.__name__
        path = _source_path(cls)

        def flag(message: str, path: str = path) -> None:
            findings.append(Finding(rule="RPL004", path=path, line=0, message=message))

        if not dataclasses.is_dataclass(cls):
            flag(f"{label} is not a dataclass")
            continue
        params = getattr(cls, "__dataclass_params__", None)
        if params is None or not params.frozen:
            flag(
                f"{label} is not frozen: wire messages must be immutable "
                "(mutation after encode/decode breaks canonical round-trips)"
            )
        if not cls.TYPE_NAME:
            flag(f"{label} has an empty TYPE_NAME and cannot appear on the wire")
        if not cls.SUPPORTED_VERSIONS:
            flag(f"{label} lists no SUPPORTED_VERSIONS")
        elif cls.VERSION not in cls.SUPPORTED_VERSIONS:
            flag(
                f"{label} cannot decode its own VERSION {cls.VERSION!r} "
                f"(SUPPORTED_VERSIONS={list(cls.SUPPORTED_VERSIONS)})"
            )
        if cls not in by_class:
            flag(
                f"{label} is a Message subclass but is not registered in the "
                "decode table; add the @register_message decorator"
            )
        elif registry.get(cls.TYPE_NAME) is not cls:
            flag(
                f"{label} registered under {by_class[cls]!r} but declares "
                f"TYPE_NAME {cls.TYPE_NAME!r}"
            )
        for spec in dataclasses.fields(cls):
            if str(spec.type) not in WIRE_FIELD_TYPES:
                flag(
                    f"{label}.{spec.name} is annotated {spec.type!s}, which "
                    "the wire cannot validate; use one of "
                    f"{'/'.join(WIRE_FIELD_TYPES)} (richer values belong "
                    "inside a dict payload)"
                )
    return findings


# -- snapshot --------------------------------------------------------------------------


def write_snapshot(path: str | Path, schema: dict | None = None) -> Path:
    """Write the canonical schema snapshot (sorted, indented, newline-terminated)."""
    schema = schema if schema is not None else build_protocol_schema()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(schema, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_snapshot(path: str | Path) -> dict | None:
    """Load a snapshot file; ``None`` when it does not exist."""
    path = Path(path)
    if not path.exists():
        return None
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "messages" not in payload:
        raise ValueError(f"{path} is not a protocol schema snapshot")
    return payload


def compare_schema(
    snapshot: dict, current: dict, *, snapshot_path: str | Path = SNAPSHOT_PATH
) -> tuple[list[Finding], list[str]]:
    """Diff the current schema against the committed snapshot.

    Returns ``(findings, notices)``.  A message whose field shape changed
    while its version stayed put is a finding (silent wire break); a shape
    change with a version bump is a notice asking for an intentional
    ``--update-snapshot``.  Added or removed message types are findings too:
    the snapshot must be regenerated deliberately so the change shows up in
    review.
    """
    findings: list[Finding] = []
    notices: list[str] = []
    regen = "regenerate with: python -m repro.analysis --update-snapshot"

    def flag(message: str) -> None:
        findings.append(Finding(rule="RPL004", path=str(snapshot_path), line=0, message=message))

    old = snapshot.get("messages", {})
    new = current.get("messages", {})
    for name in sorted(set(old) - set(new)):
        flag(
            f"message type {name!r} disappeared from the protocol; removing "
            f"a wire message is a breaking change — {regen} if intentional"
        )
    for name in sorted(set(new) - set(old)):
        flag(
            f"message type {name!r} is new and missing from the snapshot; "
            f"{regen}"
        )
    for name in sorted(set(old) & set(new)):
        old_entry, new_entry = old[name], new[name]
        shape_changed = old_entry.get("fields") != new_entry.get("fields")
        version_changed = old_entry.get("version") != new_entry.get("version")
        supported_changed = old_entry.get("supported_versions") != new_entry.get(
            "supported_versions"
        )
        if shape_changed and not version_changed:
            old_fields = set(old_entry.get("fields", {}))
            new_fields = set(new_entry.get("fields", {}))
            added = sorted(new_fields - old_fields)
            removed = sorted(old_fields - new_fields)
            retyped = sorted(
                field
                for field in old_fields & new_fields
                if old_entry["fields"][field] != new_entry["fields"][field]
            )
            detail = "; ".join(
                part
                for part in (
                    f"added {added}" if added else "",
                    f"removed {removed}" if removed else "",
                    f"retyped {retyped}" if retyped else "",
                )
                if part
            )
            flag(
                f"message {name!r} changed shape ({detail}) without a "
                f"Version bump (still {old_entry.get('version')!r}): old "
                "workers would mis-decode the new frames — bump VERSION, "
                f"extend SUPPORTED_VERSIONS, then {regen}"
            )
        elif shape_changed or version_changed or supported_changed:
            notices.append(
                f"protocol message {name!r} changed with a version bump "
                f"({old_entry.get('version')!r} -> "
                f"{new_entry.get('version')!r}); {regen} to refresh the "
                "baseline"
            )
    return findings, notices
