"""Terminal (ASCII) plotting.

The paper's Figures 1–3 are line charts.  This environment has no plotting
backend, so the figure drivers render their series as ASCII charts that can be
read directly in benchmark output and in EXPERIMENTS.md code blocks.  The
functions are deliberately small and dependency-free; they are rendering
helpers, not a plotting library.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ShapeError

__all__ = ["ascii_line_chart", "ascii_bar_chart"]


def _format_value(value: float) -> str:
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e9:
        return str(int(round(value)))
    return f"{value:.3g}"


def ascii_bar_chart(
    labels,
    values,
    *,
    title: str = "",
    width: int = 50,
    fill: str = "#",
) -> str:
    """Render one series as a horizontal bar chart.

    Parameters
    ----------
    labels, values:
        Bar labels and non-negative bar values (equal length).
    title:
        Optional heading line.
    width:
        Width in characters of the longest bar.
    fill:
        Character used to draw bars.
    """
    labels = [str(label) for label in labels]
    values = np.asarray(list(values), dtype=np.float64)
    if len(labels) != values.shape[0]:
        raise ShapeError(
            f"labels ({len(labels)}) and values ({values.shape[0]}) must have equal length"
        )
    if values.size == 0:
        return title
    if np.any(values < 0):
        raise ValueError("bar chart values must be non-negative")
    peak = float(values.max())
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar_length = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(
            f"{label.rjust(label_width)} | {fill * bar_length} {_format_value(float(value))}"
        )
    return "\n".join(lines)


def ascii_line_chart(
    x_values,
    series: dict[str, list[float]],
    *,
    title: str = "",
    height: int = 12,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Render one or more named series as an ASCII line chart.

    Each series is a list of y-values aligned with ``x_values``; missing
    points can be encoded as ``None`` / NaN and are skipped.  Series are drawn
    with distinct marker characters and listed in a legend.
    """
    x_values = list(x_values)
    if not x_values:
        raise ShapeError("x_values must not be empty")
    markers = "ox+*@%&$"
    cleaned: dict[str, np.ndarray] = {}
    for name, ys in series.items():
        ys = np.asarray([np.nan if y is None else float(y) for y in ys], dtype=np.float64)
        if ys.shape[0] != len(x_values):
            raise ShapeError(
                f"series {name!r} has {ys.shape[0]} points but there are {len(x_values)} x values"
            )
        cleaned[name] = ys
    if not cleaned:
        raise ShapeError("at least one series is required")

    all_values = np.concatenate([ys[~np.isnan(ys)] for ys in cleaned.values()])
    if all_values.size == 0:
        return title
    y_min, y_max = float(all_values.min()), float(all_values.max())
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_positions = np.linspace(0, width - 1, len(x_values)).astype(int)

    def row_of(value: float) -> int:
        fraction = (value - y_min) / (y_max - y_min)
        return int(round((height - 1) * (1.0 - fraction)))

    for (name, ys), marker in zip(cleaned.items(), markers):
        for x_pos, y in zip(x_positions, ys):
            if np.isnan(y):
                continue
            grid[row_of(y)][x_pos] = marker

    lines = [title] if title else []
    top_label = _format_value(y_max)
    bottom_label = _format_value(y_min)
    gutter = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * gutter + " +" + "-" * width
    lines.append(axis)

    tick_line = [" "] * width
    for x_pos, x in zip(x_positions, x_values):
        label = str(x)
        start = min(x_pos, max(width - len(label), 0))
        for offset, char in enumerate(label):
            if start + offset < width:
                tick_line[start + offset] = char
    lines.append(" " * gutter + "  " + "".join(tick_line))

    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(cleaned.items(), markers)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)
