"""Lightweight tabular reporting.

Every experiment driver produces a :class:`Table`; the same object renders to
an aligned ASCII table (what the benchmark harness prints), GitHub-flavoured
markdown (what EXPERIMENTS.md embeds) and CSV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Table",
    "BIT_COST_COLUMNS",
    "DEFENSE_COLUMNS",
    "DEVICE_COST_COLUMNS",
    "HAMMER_COST_COLUMNS",
    "STOCHASTIC_COST_COLUMNS",
    "bit_cost_cells",
    "defense_cells",
    "device_cost_cells",
    "hammer_cost_cells",
    "stochastic_cost_cells",
    "format_float",
    "render_text",
    "render_markdown",
    "render_csv",
]

# Canonical bit-level hardware-cost columns, in reporting order.  Any table
# that reports a lowered attack (the `hardware_cost` experiment, the hardware
# ablation, examples) uses these names so downstream CSV consumers can rely
# on one schema.  The values come from
# :meth:`repro.attacks.lowering.LoweringReport.as_dict`.
BIT_COST_COLUMNS = (
    "bit flips",
    "flips dropped",
    "words touched",
    "rows touched",
    "bit-true success",
    "bit-true keep",
    "accuracy drop %",
)

# LoweringReport.as_dict key for each column; int marks count columns that
# render without a decimal point.
_BIT_COST_FIELDS = (
    ("bit_flips", int),
    ("flips_dropped", int),
    ("words_touched", int),
    ("rows_touched", int),
    ("bit_true_success", float),
    ("bit_true_keep", float),
    ("accuracy_drop_percent", float),
)


# Device-model reporting columns for attacks lowered onto a named
# DeviceProfile: template-infeasible flips, companion flips the ECC repair
# re-routed in, codewords the *unrepaired* plan would have had silently
# corrected away, alarms the executed plan still raises, and the bit-true
# success rate of the unrepaired plan ("raw") — the before/after pair that
# shows what ECC-aware repair buys.  NaN raw success means the cell was
# lowered without ECC.
DEVICE_COST_COLUMNS = (
    "infeasible",
    "rerouted",
    "ecc corrected",
    "ecc alarms",
    "raw success",
)

_DEVICE_COST_FIELDS = (
    ("flips_infeasible", int),
    ("flips_rerouted", int),
    ("ecc_corrected", int),
    ("ecc_alarms", int),
    ("unrepaired_success", float),
)


# Mitigation-model reporting columns for attacks lowered with a hammer
# pattern: victim rows a TRR tracker saved from flipping (the pattern's
# budget cost), rows the pattern's reduced flip yield throttled below their
# planned flip count, and the total rows the pattern hammers — true
# aggressors amortised across adjacent victims, plus decoys (time cost).
HAMMER_COST_COLUMNS = (
    "rows refreshed",
    "rows throttled",
    "hammer rows",
)

_HAMMER_COST_FIELDS = (
    ("rows_refreshed", int),
    ("rows_throttled", int),
    ("hammer_rows", int),
)


# Monte-Carlo reporting columns for attacks lowered with trials > 0: the
# trial count, success/keep rates as mean ± 95 % CI half-width across the
# sampled executions, the mean attacked accuracy with its CI, and the
# expected number of planned flips that actually land (the expected kept
# bits).  All NaN (trials 0) when the cell was lowered deterministically;
# on probability-1.0 profiles under a full-yield pattern the rate columns
# equal the deterministic bit-true columns and every CI is exactly 0.
STOCHASTIC_COST_COLUMNS = (
    "trials",
    "mc success",
    "success ci95",
    "mc keep",
    "keep ci95",
    "mc accuracy",
    "accuracy ci95",
    "flips landed",
)

_STOCHASTIC_COST_FIELDS = (
    ("mc_trials", int),
    ("mc_success", float),
    ("mc_success_ci", float),
    ("mc_keep", float),
    ("mc_keep_ci", float),
    ("mc_accuracy", float),
    ("mc_accuracy_ci", float),
    ("mc_flips_landed", float),
)


# Arms-race reporting columns for cells judged by a defense
# (`defense_matrix`): the attack's modelled wall-clock, how often the
# defender ever flags the modification, how often the attack completes
# before the first flag (with its 95 % binomial CI), the mean
# defender-clock time of the first flag over detected trials (inf-free:
# NaN when nothing was detected), and the attack success that survives
# the defender's response (restore on timely detection, payload scramble
# under randomized placement) with its CI.
DEFENSE_COLUMNS = (
    "hammer s",
    "detect rate",
    "evasion rate",
    "evasion ci95",
    "ttd s",
    "ttd ci95",
    "surviving success",
    "surviving ci95",
)

_DEFENSE_FIELDS = (
    ("hammer_seconds", float),
    ("detection_rate", float),
    ("evasion_rate", float),
    ("evasion_ci", float),
    ("time_to_detection", float),
    ("time_to_detection_ci", float),
    ("surviving_success", float),
    ("surviving_success_ci", float),
)


def _cost_cells(record: dict, fields) -> list:
    cells = []
    for key, kind in fields:
        value = record[key]
        cells.append(int(round(value)) if kind is int else float(value))
    return cells


def bit_cost_cells(record: dict) -> list:
    """Map a lowering-report record onto :data:`BIT_COST_COLUMNS` cells.

    ``record`` is a :meth:`~repro.attacks.lowering.LoweringReport.as_dict`
    payload (or the identical metric dictionary stored by the campaign
    artifact store).  Count columns are rendered as integers.
    """
    return _cost_cells(record, _BIT_COST_FIELDS)


def device_cost_cells(record: dict) -> list:
    """Map a lowering-report record onto :data:`DEVICE_COST_COLUMNS` cells."""
    return _cost_cells(record, _DEVICE_COST_FIELDS)


def hammer_cost_cells(record: dict) -> list:
    """Map a lowering-report record onto :data:`HAMMER_COST_COLUMNS` cells."""
    return _cost_cells(record, _HAMMER_COST_FIELDS)


def stochastic_cost_cells(record: dict) -> list:
    """Map a lowering-report record onto :data:`STOCHASTIC_COST_COLUMNS` cells."""
    return _cost_cells(record, _STOCHASTIC_COST_FIELDS)


def defense_cells(record: dict) -> list:
    """Map a defense-statistics record onto :data:`DEFENSE_COLUMNS` cells.

    ``record`` is a :meth:`repro.defenses.evaluate.DefenseStatistics.as_dict`
    payload (or the identical metric dictionary stored by the campaign
    artifact store).
    """
    return _cost_cells(record, _DEFENSE_FIELDS)


def format_float(value, *, digits: int = 3) -> str:
    """Format a scalar cell: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value - round(value)) < 1e-12 and abs(value) < 1e12:
            return str(int(round(value)))
        return f"{value:.{digits}f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns.

    Attributes
    ----------
    title:
        Table heading (e.g. ``"Table 4: test accuracy after modification"``).
    columns:
        Column names, in display order.
    rows:
        One list per row, aligned with ``columns``.
    notes:
        Free-form footnotes appended after the table body.
    """

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values, **named) -> None:
        """Append a row given positionally or by column name."""
        if values and named:
            raise ValueError("pass the row either positionally or by name, not both")
        if named:
            missing = [col for col in self.columns if col not in named]
            if missing:
                raise ValueError(f"missing values for columns {missing}")
            row = [named[col] for col in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"expected {len(self.columns)} values, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        """Append a footnote."""
        self.notes.append(note)

    def column(self, name: str) -> list:
        """Return all values of one column."""
        try:
            index = self.columns.index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[index] for row in self.rows]

    def to_records(self) -> list[dict]:
        """Return the rows as a list of dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # -- rendering -----------------------------------------------------------------
    def render(self, fmt: str = "text", *, digits: int = 3) -> str:
        """Render the table as ``"text"``, ``"markdown"`` or ``"csv"``."""
        if fmt == "text":
            return render_text(self, digits=digits)
        if fmt == "markdown":
            return render_markdown(self, digits=digits)
        if fmt == "csv":
            return render_csv(self, digits=digits)
        raise ValueError(f"unknown format {fmt!r}; expected text, markdown or csv")

    def save(self, path: str | Path, fmt: str = "csv", *, digits: int = 6) -> Path:
        """Write the rendered table to a file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render(fmt, digits=digits) + "\n", encoding="utf-8")
        return path


def _formatted_cells(table: Table, digits: int) -> list[list[str]]:
    return [[format_float(value, digits=digits) for value in row] for row in table.rows]


def render_text(table: Table, *, digits: int = 3) -> str:
    """Render an aligned plain-text table."""
    cells = _formatted_cells(table, digits)
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells)) if cells else len(str(col))
        for i, col in enumerate(table.columns)
    ]
    lines = [table.title, "=" * max(len(table.title), 1)]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(table.columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(table.columns))))
    for note in table.notes:
        lines.append(f"* {note}")
    return "\n".join(lines)


def render_markdown(table: Table, *, digits: int = 3) -> str:
    """Render a GitHub-flavoured markdown table."""
    cells = _formatted_cells(table, digits)
    lines = [f"**{table.title}**", ""]
    lines.append("| " + " | ".join(str(c) for c in table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    for note in table.notes:
        lines.append("")
        lines.append(f"*{note}*")
    return "\n".join(lines)


def render_csv(table: Table, *, digits: int = 6) -> str:
    """Render the table as CSV (no quoting of commas inside cells)."""
    cells = _formatted_cells(table, digits)
    lines = [",".join(str(c) for c in table.columns)]
    lines.extend(",".join(row) for row in cells)
    return "\n".join(lines)
