"""Table 4 — test accuracy of the modified model over the (S, R) grid.

The stealth claim of the paper: pinning the classification of ``R − S`` keep
images preserves the overall test accuracy.  Accuracy falls as ``S`` grows
(more faults to hide) and recovers as ``R`` grows (more anchor images
stabilise the model); at ``S = 1, R = 1000`` the degradation is below one
percentage point for MNIST.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.experiments.campaign import Campaign, CampaignResult, run_experiment
from repro.experiments.common import get_setting, sweep_cell_spec, usable_r_values
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble"]


def _cell(dataset: str, scale: str, seed: int, s: int, r: int):
    return sweep_cell_spec(dataset=dataset, scale=scale, seed=seed, s=s, r=r, norm="l0")


def build_campaign(
    scale: str = "ci",
    *,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
) -> Campaign:
    """Declare the (S, R) accuracy grid as one job per valid cell."""
    setting = get_setting(scale)
    jobs = [
        _cell(dataset, scale, seed, s, r)
        for dataset in datasets
        for r in usable_r_values(setting)
        for s in setting.s_values
        if s <= r
    ]
    return Campaign(
        name="table4",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"datasets": tuple(datasets)},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-cell metrics into the paper's Table 4."""
    setting = get_setting(campaign.scale)
    s_values = setting.s_values
    columns = ["dataset", "clean accuracy", "R"] + [f"S={s}" for s in s_values]
    table = Table(
        title="Table 4: test accuracy after DNN parameter modifications",
        columns=columns,
    )

    for dataset in campaign.metadata["datasets"]:
        rows = []
        clean_accuracy = None
        for r in usable_r_values(setting):
            cells = []
            for s in s_values:
                if s > r:
                    cells.append("-")
                    continue
                metrics = results.metrics_for(_cell(dataset, campaign.scale, campaign.seed, s, r))
                cells.append(metrics["attacked_accuracy"])
                clean_accuracy = metrics["clean_accuracy"]
            rows.append((r, cells))
        for r, cells in rows:
            table.add_row(dataset, clean_accuracy, r, *cells)

    table.add_note(
        "Paper reference: MNIST clean 99.5%, S=1/R=1000 -> 98.7% (0.8 pt drop); "
        "CIFAR clean 79.5%, S=1/R=1000 -> 78.5% (1.0 pt drop).  Accuracy decreases "
        "with S and recovers as R grows."
    )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce Table 4 and return it as a :class:`Table`."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        datasets=datasets,
    )
