"""Table 4 — test accuracy of the modified model over the (S, R) grid.

The stealth claim of the paper: pinning the classification of ``R − S`` keep
images preserves the overall test accuracy.  Accuracy falls as ``S`` grows
(more faults to hide) and recovers as ``R`` grows (more anchor images
stabilise the model); at ``S = 1, R = 1000`` the degradation is below one
percentage point for MNIST.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.analysis.sweeps import sweep_s_r_grid
from repro.experiments.common import (
    anchor_and_eval_split,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run"]


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
) -> Table:
    """Reproduce Table 4 and return it as a :class:`Table`."""
    setting = get_setting(scale)
    s_values = setting.s_values
    r_values = setting.r_values

    columns = ["dataset", "clean accuracy", "R"] + [f"S={s}" for s in s_values]
    table = Table(
        title="Table 4: test accuracy after DNN parameter modifications",
        columns=columns,
    )

    config = attack_config_for(scale, norm="l0")
    for dataset in datasets:
        trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
        anchor_pool, eval_set = anchor_and_eval_split(trained)
        clean_accuracy = trained.model.evaluate(eval_set.images, eval_set.labels)
        usable_r = [r for r in r_values if r <= len(anchor_pool)]
        records = sweep_s_r_grid(
            trained.model,
            anchor_pool,
            s_values=s_values,
            r_values=usable_r,
            config=config,
            test_set=eval_set,
            seed=seed,
        )
        by_key = {(rec.num_targets, rec.num_images): rec for rec in records}
        for r in usable_r:
            row = [dataset, clean_accuracy, r]
            for s in s_values:
                rec = by_key.get((s, r))
                row.append(rec.evaluation.attacked_test_accuracy if rec else "-")
            table.add_row(*row)

    table.add_note(
        "Paper reference: MNIST clean 99.5%, S=1/R=1000 -> 98.7% (0.8 pt drop); "
        "CIFAR clean 79.5%, S=1/R=1000 -> 78.5% (1.0 pt drop).  Accuracy decreases "
        "with S and recovers as R grows."
    )
    return table
