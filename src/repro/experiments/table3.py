"""Table 3 — ℓ0-based vs ℓ2-based attacks.

For three (S, R) settings the paper runs both variants of the attack on the
last FC layer of the MNIST network and reports the ℓ0 and ℓ2 norms of the
resulting modification.  Expected shape: the ℓ0 attack modifies far fewer
parameters, at the price of a (somewhat) larger Euclidean magnitude.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.zoo.registry import ModelRegistry

__all__ = ["run"]


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
) -> Table:
    """Reproduce Table 3 and return it as a :class:`Table`."""
    setting = get_setting(scale)
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    model = trained.model
    test_set = trained.data.test

    columns = ["attack"]
    for s, r in setting.norm_settings:
        columns += [f"l0 (S={s},R={r})", f"l2 (S={s},R={r})"]
    table = Table(
        title=f"Table 3: l0 and l2 norms of the l0- and l2-based attacks ({dataset})",
        columns=columns,
    )

    attack_variants = [
        ("l0 attack", attack_config_for(scale, norm="l0")),
        # The l2 attack does not sparsify, so it needs no hinge margin.
        ("l2 attack", attack_config_for(scale, norm="l2", kappa=0.0)),
    ]
    for label, config in attack_variants:
        row = [label]
        for s, r in setting.norm_settings:
            plan = make_attack_plan(
                test_set, num_targets=s, num_images=r, seed=seed + 13 * s + r
            )
            result = FaultSneakingAttack(model, config).attack(plan)
            row += [result.l0_norm, result.l2_norm]
        table.add_row(*row)

    table.add_note(
        "Paper reference (MNIST, last FC layer): l0 attack 1026/1208/1606 modified "
        "parameters vs l2 attack 1431/1432/1964; the l2 attack achieves the smaller "
        "Euclidean norm."
    )
    table.add_note(
        "Expected shape: the l0-based attack modifies fewer parameters than the "
        "l2-based attack for every (S, R)."
    )
    return table
