"""Table 3 — ℓ0-based vs ℓ2-based attacks.

For three (S, R) settings the paper runs both variants of the attack on the
last FC layer of the MNIST network and reports the ℓ0 and ℓ2 norms of the
resulting modification.  Expected shape: the ℓ0 attack modifies far fewer
parameters, at the price of a (somewhat) larger Euclidean magnitude.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble"]

# (row label, attack norm, kappa override).  The l2 attack does not sparsify,
# so it needs no hinge margin.
_VARIANTS = (
    ("l0 attack", "l0", None),
    ("l2 attack", "l2", 0.0),
)


def _cell(dataset: str, scale: str, seed: int, norm: str, kappa, s: int, r: int) -> JobSpec:
    return JobSpec.make(
        "norm-attack",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        norm=norm,
        kappa=kappa,
        s=int(s),
        r=int(r),
        plan_seed=int(seed + 13 * s + r),
    )


@register_job("norm-attack")
def _norm_attack_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    norm: str,
    kappa,
    s: int,
    r: int,
    plan_seed: int,
) -> dict:
    """Run one attack-norm variant at one (S, R) setting."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    overrides = {} if kappa is None else {"kappa": float(kappa)}
    config = attack_config_for(scale, norm=norm, **overrides)
    plan = make_attack_plan(trained.data.test, num_targets=s, num_images=r, seed=plan_seed)
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    return {"l0": result.l0_norm, "l2": result.l2_norm}


def build_campaign(
    scale: str = "ci", *, seed: int = 0, dataset: str = "mnist_like"
) -> Campaign:
    """Declare one job per (attack variant, (S, R)) cell of Table 3."""
    setting = get_setting(scale)
    jobs = [
        _cell(dataset, scale, seed, norm, kappa, s, r)
        for _, norm, kappa in _VARIANTS
        for s, r in setting.norm_settings
    ]
    return Campaign(
        name="table3",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"dataset": dataset},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-cell metrics into the paper's Table 3."""
    setting = get_setting(campaign.scale)
    dataset = campaign.metadata["dataset"]
    columns = ["attack"]
    for s, r in setting.norm_settings:
        columns += [f"l0 (S={s},R={r})", f"l2 (S={s},R={r})"]
    table = Table(
        title=f"Table 3: l0 and l2 norms of the l0- and l2-based attacks ({dataset})",
        columns=columns,
    )

    for label, norm, kappa in _VARIANTS:
        row = [label]
        for s, r in setting.norm_settings:
            metrics = results.metrics_for(
                _cell(dataset, campaign.scale, campaign.seed, norm, kappa, s, r)
            )
            row += [format_cell_int(metrics["l0"]), metrics["l2"]]
        table.add_row(*row)

    table.add_note(
        "Paper reference (MNIST, last FC layer): l0 attack 1026/1208/1606 modified "
        "parameters vs l2 attack 1431/1432/1964; the l2 attack achieves the smaller "
        "Euclidean norm."
    )
    table.add_note(
        "Expected shape: the l0-based attack modifies fewer parameters than the "
        "l2-based attack for every (S, R)."
    )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce Table 3 and return it as a :class:`Table`."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        dataset=dataset,
    )
