"""Table 2 — attacking only weights vs only biases of the last FC layer.

The paper restricts the fault sneaking attack to either the weight matrix or
the bias vector of the last FC layer with ``S = R ∈ {1, 2, 4, 8}``.  Biases
are extremely cheap to modify (ℓ0 of 1–2 suffices for one or two images) but
run out of expressive power beyond two simultaneous targets — the success
rate collapses to 0 — which is the paper's argument against the single-bias
attack of Liu et al.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.zoo.registry import ModelRegistry

__all__ = ["run"]


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    layer: str = "fc_logits",
) -> Table:
    """Reproduce Table 2 and return it as a :class:`Table`."""
    setting = get_setting(scale)
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    model = trained.model
    test_set = trained.data.test

    s_values = setting.type_s_values
    columns = ["parameter type", "metric"] + [f"S=R={s}" for s in s_values]
    table = Table(
        title=f"Table 2: l0 norm and success rate per parameter type, last FC layer ({dataset})",
        columns=columns,
    )

    cases = [
        ("weights", {"include_weights": True, "include_biases": False}),
        ("biases", {"include_weights": False, "include_biases": True}),
    ]
    for label, kind in cases:
        l0_row = [label, "l0 norm"]
        success_row = [label, "success rate"]
        for s in s_values:
            config = attack_config_for(scale, norm="l0", layers=(layer,), **kind)
            plan = make_attack_plan(
                test_set, num_targets=s, num_images=s, seed=seed + s
            )
            result = FaultSneakingAttack(model, config).attack(plan)
            succeeded = result.success_rate >= 1.0
            l0_row.append(result.l0_norm if succeeded else "-")
            success_row.append(result.success_rate)
        table.add_row(*l0_row)
        table.add_row(*success_row)

    table.add_note(
        "Paper reference (MNIST): weights succeed at every S with l0 236/458/715/1644; "
        "biases succeed only for S=1,2 (l0 = 2/4) and fail for S>=4."
    )
    table.add_note("'-' marks configurations where the attack did not reach 100% success.")
    return table
