"""Table 2 — attacking only weights vs only biases of the last FC layer.

The paper restricts the fault sneaking attack to either the weight matrix or
the bias vector of the last FC layer with ``S = R ∈ {1, 2, 4, 8}``.  Biases
are extremely cheap to modify (ℓ0 of 1–2 suffices for one or two images) but
run out of expressive power beyond two simultaneous targets — the success
rate collapses to 0 — which is the paper's argument against the single-bias
attack of Liu et al.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble"]

# (row label, parameter-view restriction) for the two halves of the table.
_CASES = (
    ("weights", True, False),
    ("biases", False, True),
)


def _cell(
    dataset: str, scale: str, seed: int, layer: str, s: int, weights: bool, biases: bool
) -> JobSpec:
    return JobSpec.make(
        "param-type-attack",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        layer=layer,
        s=int(s),
        include_weights=weights,
        include_biases=biases,
        plan_seed=int(seed + s),
    )


@register_job("param-type-attack")
def _param_type_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    layer: str,
    s: int,
    include_weights: bool,
    include_biases: bool,
    plan_seed: int,
) -> dict:
    """Attack only the weights or only the biases of one layer."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    config = attack_config_for(
        scale,
        norm="l0",
        layers=(layer,),
        include_weights=include_weights,
        include_biases=include_biases,
    )
    plan = make_attack_plan(trained.data.test, num_targets=s, num_images=s, seed=plan_seed)
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    return {"l0": result.l0_norm, "success_rate": result.success_rate}


def build_campaign(
    scale: str = "ci",
    *,
    seed: int = 0,
    dataset: str = "mnist_like",
    layer: str = "fc_logits",
) -> Campaign:
    """Declare one job per (parameter type, S) cell of Table 2."""
    setting = get_setting(scale)
    jobs = [
        _cell(dataset, scale, seed, layer, s, weights, biases)
        for _, weights, biases in _CASES
        for s in setting.type_s_values
    ]
    return Campaign(
        name="table2",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"dataset": dataset, "layer": layer},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-cell metrics into the paper's Table 2."""
    setting = get_setting(campaign.scale)
    dataset = campaign.metadata["dataset"]
    layer = campaign.metadata["layer"]
    s_values = setting.type_s_values
    columns = ["parameter type", "metric"] + [f"S=R={s}" for s in s_values]
    table = Table(
        title=f"Table 2: l0 norm and success rate per parameter type, last FC layer ({dataset})",
        columns=columns,
    )

    for label, weights, biases in _CASES:
        l0_row = [label, "l0 norm"]
        success_row = [label, "success rate"]
        for s in s_values:
            metrics = results.metrics_for(
                _cell(dataset, campaign.scale, campaign.seed, layer, s, weights, biases)
            )
            succeeded = metrics["success_rate"] >= 1.0
            l0_row.append(format_cell_int(metrics["l0"]) if succeeded else "-")
            success_row.append(metrics["success_rate"])
        table.add_row(*l0_row)
        table.add_row(*success_row)

    table.add_note(
        "Paper reference (MNIST): weights succeed at every S with l0 236/458/715/1644; "
        "biases succeed only for S=1,2 (l0 = 2/4) and fail for S>=4."
    )
    table.add_note("'-' marks configurations where the attack did not reach 100% success.")
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    layer: str = "fc_logits",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce Table 2 and return it as a :class:`Table`."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        dataset=dataset,
        layer=layer,
    )
