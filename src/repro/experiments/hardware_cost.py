"""Bit-true hardware cost: storage × budget × device profile × hammer pattern × S.

The paper argues (§2.3) that minimising the ℓ0 norm is what makes the attack
executable on real hardware, but reports only the proxy.  This experiment
closes the loop: every grid cell solves the attack, lowers the modification
into an exact bit-flip plan for a deployed storage format (float32 / float16 /
int8) on a *named device profile* (DRAM geometry, per-cell flip template,
optional ECC scheme, optional TRR sampler) under a chosen *hammer pattern*,
repairs the plan under the device's physics and a hardware budget, and
re-measures success rate, keep rate and accuracy drop on the *bit-true*
modified model.

For ECC profiles the table also reports the "raw" success of the unrepaired
plan — the rate after the memory controller silently corrects isolated flips
away — next to the repaired rate, showing what the syndrome-aware re-routing
pass buys.

On top of the deterministic lowering, every cell runs ``--trials`` seeded
Monte-Carlo executions of its repaired plan (per-cell flip sampling and
probabilistic-TRR re-rolls — the stochastic fault model) and reports
rate ± 95 % CI columns.  The per-cell trial seed is derived from
``--flip-seed`` and the cell's own identity with
:func:`repro.utils.rng.derive_seed`, so the statistics are byte-identical
between serial and ``--jobs N`` runs and across resumes; on deterministic
(probability-1.0) profiles under a full-yield pattern every trial reproduces
the deterministic columns exactly and the CIs are 0 (reduced-yield patterns
scale the landing probability by their ``flip_yield``).

Each cell is an independent campaign job, so the grid parallelises under
``--jobs N`` and memoizes per cell exactly like the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import (
    BIT_COST_COLUMNS,
    DEVICE_COST_COLUMNS,
    HAMMER_COST_COLUMNS,
    STOCHASTIC_COST_COLUMNS,
    Table,
    bit_cost_cells,
    device_cost_cells,
    hammer_cost_cells,
    stochastic_cost_cells,
)
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.lowering import (
    VARIANCE_REDUCTION_SCHEMES,
    HardwareBudget,
    LoweringReport,
    lower_attack,
)
from repro.attacks.parameter_view import ParameterView
from repro.attacks.targets import AttackPlan, make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import (
    anchor_and_eval_split,
    anchor_pool_size,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.hardware.device import get_pattern, get_profile
from repro.nn.quantization import STORAGE_FORMATS
from repro.utils.errors import ConfigurationError
from repro.utils.rng import derive_seed
from repro.zoo.registry import ModelRegistry, default_registry

__all__ = [
    "run",
    "build_campaign",
    "assemble",
    "lowered_cell",
    "LoweredCell",
    "BUDGET_LEVELS",
    "DEFAULT_PROFILES",
    "DEFAULT_PATTERNS",
    "DEFAULT_TRIALS",
]

# Budget levels swept by the grid.  "unlimited" applies only the device's
# physics (flip template, ECC) with no budget caps, isolating what the device
# itself costs; "derived" additionally enforces the HardwareBudget the
# profile derives (flips/word, hammerable rows); "expected" is the derived
# budget with the massaging stage maximising *expected* success under the
# per-cell landing probabilities (lower_attack(expected_repair=True)) — it
# coincides with "derived" bit-for-bit on probability-1.0 profiles and only
# diverges on the stochastic-* profiles, which is exactly the regression
# property the budget-sweep test pins.
BUDGET_LEVELS = ("unlimited", "derived", "expected")

# Device profiles swept by default: a permissive consumer DIMM and the
# SECDED-protected server DIMM (the pair that shows the ECC repair story).
# The CLI's --profile flag (or run(profiles=...)) selects others, e.g.
# ddr4-trrespass, ddr5-ondie or server-chipkill.
DEFAULT_PROFILES = ("ddr3-noecc", "server-ecc")

# Hammer patterns swept by default.  One pattern keeps the default grid the
# size it always was; --hammer-pattern (repeatable) or run(patterns=...) adds
# the TRR-evasion patterns, which matter on sampler-based profiles like
# ddr4-trrespass.
DEFAULT_PATTERNS = ("double-sided",)

# Monte-Carlo trials per cell.  Three is enough to exercise the stochastic
# machinery and pin the probability-1.0-equals-deterministic property in the
# golden tables without noticeably slowing the grid; campaigns studying the
# stochastic-* profiles raise it via --trials.
DEFAULT_TRIALS = 3

# Fixed anchor count R of every cell (capped by the anchor pool at runtime).
_R = 100


def _num_images(setting) -> int:
    return min(_R, anchor_pool_size(setting))


def _cell(
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    r: int,
    storage: str,
    profile: str,
    budget: str,
    pattern: str,
    trials: int,
    flip_seed: int,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
) -> JobSpec:
    # The scheme and the drift enter the spec only when they differ from the
    # historical defaults, so every pre-existing artifact key (and golden
    # manifest) stays byte-identical for nominal "independent" campaigns.
    extra: dict = {}
    if variance_reduction != "independent":
        extra["variance_reduction"] = variance_reduction
    if env_drift != 0.0:
        extra["env_drift"] = float(env_drift)
    return JobSpec.make(
        "hardware-cost-cell",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        s=int(s),
        r=int(r),
        storage=storage,
        profile=profile,
        budget=budget,
        pattern=pattern,
        plan_seed=int(seed),
        trials=int(trials),
        flip_seed=int(flip_seed),
        **extra,
    )


@dataclass
class _SolvedAttack:
    """The slice of a FaultSneakingResult the lowering pipeline consumes.

    Grid cells that differ only along the storage/profile/budget axes share
    one ADMM solve through the registry's disk cache; a cache hit
    reconstructs this lightweight view instead of re-running the attack.
    """

    view: ParameterView
    delta: np.ndarray
    plan: AttackPlan
    success_mask: np.ndarray
    keep_mask: np.ndarray

    @property
    def success_rate(self) -> float:
        return float(self.success_mask.mean()) if self.success_mask.size else 1.0

    @property
    def keep_rate(self) -> float:
        return float(self.keep_mask.mean()) if self.keep_mask.size else 1.0


def _solve_attack(
    trained, config, plan, registry: ModelRegistry | None, solve_key_params: dict
) -> _SolvedAttack:
    """Solve the attack for one (dataset, scale, seed, s, r) point, memoized.

    The solve is independent of the storage/profile/budget axes, so it is
    cached in the model registry's disk cache keyed by the solve inputs only:
    the storage × profile × budget cells of each S value pay for one ADMM
    solve between them (and across resumed runs), in every worker process.
    """
    cache = (registry or default_registry()).disk_cache
    key = cache.key_for({"kind": "hardware-cost-solve", **solve_key_params})
    view = ParameterView(trained.model, config.selector())
    cached = cache.load(key)
    if cached is not None and cached["delta"].shape == (view.size,):
        return _SolvedAttack(
            view=view,
            delta=cached["delta"],
            plan=plan,
            success_mask=cached["success_mask"].astype(bool),
            keep_mask=cached["keep_mask"].astype(bool),
        )
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    cache.store(
        key,
        {
            "delta": result.delta,
            "success_mask": result.success_mask.astype(np.uint8),
            "keep_mask": result.keep_mask.astype(np.uint8),
        },
    )
    return _SolvedAttack(
        view=view,
        delta=result.delta,
        plan=plan,
        success_mask=np.asarray(result.success_mask, dtype=bool),
        keep_mask=np.asarray(result.keep_mask, dtype=bool),
    )


@dataclass
class LoweredCell:
    """Everything one lowered grid cell produced, before metric extraction.

    ``hardware_cost`` turns this straight into its table row;
    ``defense_matrix`` replays the same lowering (same solve cache, same
    trial-seed derivation, hence bit-identical Monte-Carlo columns) and then
    runs the defense evaluation on top of the report's per-trial outcomes.
    """

    solved: _SolvedAttack
    report: LoweringReport
    eval_set: object
    clean_accuracy: float
    l0: int

    def metrics(self) -> dict:
        out = self.report.as_dict()
        out["l0"] = self.l0
        out["solver_success"] = self.solved.success_rate
        out["solver_keep"] = self.solved.keep_rate
        return out


def lowered_cell(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    r: int,
    storage: str,
    profile: str,
    budget: str,
    pattern: str = "double-sided",
    plan_seed: int,
    trials: int = 0,
    flip_seed: int = 0,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
) -> LoweredCell:
    """Solve one attack and lower it onto a device — the shared cell core.

    Both the ``hardware_cost`` and ``defense_matrix`` cell jobs run through
    this single function so their seed derivations cannot drift apart: a
    ``defense_matrix`` cell with the same (dataset, scale, seed, s, storage,
    profile, budget, pattern, trials, flip_seed) reproduces the
    ``hardware_cost`` Monte-Carlo columns bit for bit.
    """
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    anchor_pool, eval_set = anchor_and_eval_split(trained)
    config = attack_config_for(scale, norm="l0")
    clean_accuracy = trained.model.evaluate(eval_set.images, eval_set.labels)
    plan = make_attack_plan(anchor_pool, num_targets=s, num_images=r, seed=plan_seed)
    solved = _solve_attack(
        trained,
        config,
        plan,
        registry,
        {
            "dataset": dataset,
            "scale": scale,
            "seed": int(seed),
            "s": int(s),
            "r": int(r),
            "plan_seed": int(plan_seed),
            "norm": config.norm,
        },
    )
    report = lower_attack(
        solved,
        storage=storage,
        profile=profile,
        # "unlimited" overrides the profile-derived budget with no caps; the
        # device physics (template, ECC, TRR sampler) stay active either way.
        # "derived" and "expected" both enforce the profile-derived budget;
        # "expected" additionally optimises the massaging stage for expected
        # success under the per-cell landing probabilities.
        budget=HardwareBudget() if budget == "unlimited" else None,
        expected_repair=budget == "expected",
        hammer_pattern=pattern,
        trials=trials,
        # One trial stream per cell: folding the full cell identity into the
        # seed keeps cells independent while staying a pure function of the
        # job parameters — the serial/parallel byte-identity contract.
        rng=derive_seed(
            "hardware-cost-flips",
            int(flip_seed),
            dataset,
            scale,
            int(seed),
            int(s),
            storage,
            profile,
            budget,
            pattern,
        ),
        variance_reduction=variance_reduction,
        # CRN streams are keyed by the campaign-wide flip seed alone, so
        # every cell of a CRN campaign consumes identical trial draws —
        # that sharing is the whole point of common random numbers.
        crn_seed=int(flip_seed),
        env_drift=env_drift,
        eval_set=eval_set,
        clean_accuracy=clean_accuracy,
    )
    return LoweredCell(
        solved=solved,
        report=report,
        eval_set=eval_set,
        clean_accuracy=clean_accuracy,
        l0=int(np.count_nonzero(np.abs(solved.delta) > config.zero_tolerance)),
    )


@register_job("hardware-cost-cell")
def _hardware_cost_cell_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    r: int,
    storage: str,
    profile: str,
    budget: str,
    pattern: str = "double-sided",
    plan_seed: int,
    trials: int = 0,
    flip_seed: int = 0,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
) -> dict:
    """Solve one attack, lower it onto a device and return the cost metrics."""
    cell = lowered_cell(
        registry=registry,
        dataset=dataset,
        scale=scale,
        seed=seed,
        s=s,
        r=r,
        storage=storage,
        profile=profile,
        budget=budget,
        pattern=pattern,
        plan_seed=plan_seed,
        trials=trials,
        flip_seed=flip_seed,
        variance_reduction=variance_reduction,
        env_drift=env_drift,
    )
    return cell.metrics()


def build_campaign(
    scale: str = "ci",
    *,
    seed: int = 0,
    dataset: str = "mnist_like",
    storages: tuple[str, ...] = STORAGE_FORMATS,
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    patterns: tuple[str, ...] = DEFAULT_PATTERNS,
    trials: int = DEFAULT_TRIALS,
    flip_seed: int = 0,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
) -> Campaign:
    """Declare one job per (storage, profile, budget, hammer pattern, S) point.

    ``trials`` Monte-Carlo executions run inside every cell (0 disables the
    stochastic columns); ``flip_seed`` shifts every cell's trial stream at
    once — the campaign axis the CI seed matrix sweeps.
    ``variance_reduction`` selects the per-cell Monte-Carlo scheme
    (:data:`repro.attacks.lowering.VARIANCE_REDUCTION_SCHEMES`): ``"crn"``
    runs every cell on common random numbers keyed by ``flip_seed``,
    ``"antithetic"`` pairs each cell's trials on complementary landing
    draws.  ``env_drift`` scales every cell's landing probabilities by
    ``1 - env_drift`` (temperature/voltage drift of the deployment); like
    the scheme, it enters the cell keys only when non-default so historical
    artifacts stay valid.  Either way the campaign stays a pure function of
    its parameters, so serial and parallel runs agree byte for byte.
    """
    for name in profiles:
        get_profile(name)  # fail fast on unknown profile names
    for name in patterns:
        get_pattern(name)  # fail fast on unknown pattern names
    if trials < 0:
        raise ConfigurationError(f"trials must be >= 0, got {trials}")
    if variance_reduction not in VARIANCE_REDUCTION_SCHEMES:
        raise ConfigurationError(
            f"variance_reduction must be one of {VARIANCE_REDUCTION_SCHEMES}, "
            f"got {variance_reduction!r}"
        )
    if not -1.0 < env_drift < 1.0:
        raise ConfigurationError(f"env_drift must lie in (-1, 1), got {env_drift}")
    setting = get_setting(scale)
    r = _num_images(setting)
    jobs = [
        _cell(
            dataset, scale, seed, s, r, storage, profile, budget, pattern,
            trials, flip_seed, variance_reduction, env_drift,
        )
        for storage in storages
        for profile in profiles
        for budget in BUDGET_LEVELS
        for pattern in patterns
        for s in setting.hardware_s_values
        if s <= r
    ]
    return Campaign(
        name="hardware_cost",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={
            "dataset": dataset,
            "storages": tuple(storages),
            "profiles": tuple(profiles),
            "patterns": tuple(patterns),
            "trials": int(trials),
            "flip_seed": int(flip_seed),
            "variance_reduction": variance_reduction,
            "env_drift": float(env_drift),
        },
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-cell metrics into the hardware-cost table."""
    setting = get_setting(campaign.scale)
    dataset = campaign.metadata["dataset"]
    profiles = campaign.metadata["profiles"]
    patterns = campaign.metadata.get("patterns", DEFAULT_PATTERNS)
    trials = campaign.metadata.get("trials", 0)
    flip_seed = campaign.metadata.get("flip_seed", 0)
    variance_reduction = campaign.metadata.get("variance_reduction", "independent")
    env_drift = campaign.metadata.get("env_drift", 0.0)
    r = _num_images(setting)
    table = Table(
        title=(
            f"Bit-true hardware cost per storage format, device profile, "
            f"budget and hammer pattern ({dataset}, R={r})"
        ),
        columns=[
            "storage",
            "profile",
            "budget",
            "pattern",
            "S",
            "l0",
            "solver success",
            *BIT_COST_COLUMNS,
            *DEVICE_COST_COLUMNS,
            *HAMMER_COST_COLUMNS,
            *STOCHASTIC_COST_COLUMNS,
        ],
    )
    for storage in campaign.metadata["storages"]:
        for profile in profiles:
            for budget in BUDGET_LEVELS:
                for pattern in patterns:
                    for s in setting.hardware_s_values:
                        if s > r:
                            continue
                        metrics = results.metrics_for(
                            _cell(
                                dataset,
                                campaign.scale,
                                campaign.seed,
                                s,
                                r,
                                storage,
                                profile,
                                budget,
                                pattern,
                                trials,
                                flip_seed,
                                variance_reduction,
                                env_drift,
                            )
                        )
                        table.add_row(
                            storage,
                            profile,
                            budget,
                            pattern,
                            s,
                            format_cell_int(metrics["l0"]),
                            metrics["solver_success"],
                            *bit_cost_cells(metrics),
                            *device_cost_cells(metrics),
                            *hammer_cost_cells(metrics),
                            *stochastic_cost_cells(metrics),
                        )
    table.add_note(
        "bit-true rates are re-measured on the model rebuilt from the flipped "
        "memory words after template/ECC-aware repair; the solver rate is the "
        "upper bound before quantisation, device physics and budget repair."
    )
    table.add_note(
        "'raw success' is the bit-true rate of the unrepaired plan after the "
        "ECC controller corrects isolated flips away (NaN on profiles "
        "without ECC)."
    )
    table.add_note(
        "profiles: " + "; ".join(
            f"{name} = {get_profile(name).describe()}" for name in profiles
        )
    )
    table.add_note(
        "budget levels: unlimited = device physics only; derived = " + "; ".join(
            f"{name}: {get_profile(name).budget().describe()}" for name in profiles
        )
        + "; expected = the derived budget with massaging optimised for "
        "expected success under the per-cell landing probabilities "
        "(identical to derived on probability-1.0 profiles)"
    )
    if env_drift:
        table.add_note(
            f"env drift {env_drift:+g}: landing probabilities scaled by "
            f"{1.0 - env_drift:g} in the Monte-Carlo trials and "
            "expected-success massaging."
        )
    table.add_note(
        "patterns: " + "; ".join(
            f"{name} = {get_pattern(name).describe()}" for name in patterns
        )
        + " (TRR-sampler profiles flip only the victim rows the pattern "
        "keeps off the tracker)"
    )
    if trials:
        table.add_note(
            f"mc columns: {trials} seeded Monte-Carlo executions per cell "
            f"(flip-seed {flip_seed}); rates are mean ± 95% CI half-width, "
            "'flips landed' is the expected landed-flip count.  Under "
            "full-yield patterns (double-sided), probability-1.0 profiles "
            "reproduce the bit-true columns with 0 CI; reduced-yield "
            "patterns scale the landing probability by their flip_yield."
        )
    else:
        table.add_note("mc columns are NaN: the grid ran with --trials 0.")
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    storages: tuple[str, ...] = STORAGE_FORMATS,
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    patterns: tuple[str, ...] = DEFAULT_PATTERNS,
    trials: int = DEFAULT_TRIALS,
    flip_seed: int = 0,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Run the bit-true hardware-cost sweep and return its table."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        dataset=dataset,
        storages=storages,
        profiles=profiles,
        patterns=patterns,
        trials=trials,
        flip_seed=flip_seed,
        variance_reduction=variance_reduction,
        env_drift=env_drift,
    )
