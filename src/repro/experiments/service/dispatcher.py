"""Asyncio campaign dispatcher: work queue, leases, heartbeats, requeue.

The dispatcher owns the pending-job queue of a campaign and serves it to
workers that attach over a localhost TCP socket speaking the newline-delimited
JSON protocol of :mod:`repro.experiments.service.protocol`:

* a worker attaches with :class:`~.protocol.WorkerHello` and is immediately
  offered a job (:class:`~.protocol.JobClaim`) under a *lease*;
* while executing, the worker's periodic :class:`~.protocol.Heartbeat`
  frames extend the lease; a worker that stops heartbeating — hung, killed,
  or partitioned — loses the lease and the job is requeued for another
  worker;
* a dropped connection requeues the worker's leased job immediately (no need
  to wait out the lease);
* :class:`~.protocol.JobFailed` requeues the job until ``max_attempts``
  claims have been burned, after which the failure is surfaced to the
  consumer;
* :class:`~.protocol.JobSubmit` frames are accepted too, so jobs can be
  enqueued remotely as well as in-process.

Completed results land on :attr:`Dispatcher.results`, an ``asyncio.Queue``
of ``("result", JobResult)`` / ``("error", FleetJobError)`` items that the
fleet executor consumes.  Job identity is the spec content hash, so a job
that is requeued and finished twice (a slow worker racing its replacement)
is counted once: the first completion wins and the duplicate is dropped —
both executions are deterministic replicas of the same cell, so which copy
wins is unobservable in the tables.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.experiments.campaign import EventCallback, JobResult, JobSpec
from repro.experiments.service.protocol import (
    MAX_FRAME_BYTES,
    Heartbeat,
    JobClaim,
    JobDone,
    JobFailed,
    JobSubmit,
    Message,
    ProtocolError,
    WorkerGoodbye,
    WorkerHello,
    decode_frame,
    decode_metrics,
    encode_frame,
)
from repro.experiments.telemetry.bus import TelemetryBus, global_bus
from repro.experiments.telemetry.events import (
    JobError,
    JobFinished,
    JobQueued,
    JobRequeued,
    JobStarted,
    TelemetryEvent,
    WorkerJoined,
    WorkerLeft,
)
from repro.utils.logging import get_logger

__all__ = ["Dispatcher", "FleetJobError"]

_LOGGER = get_logger("experiments.service.dispatcher")


class FleetJobError(RuntimeError):
    """A job exhausted its claim attempts; carries the last worker error."""

    def __init__(self, job_key: str, kind: str, attempts: int, error: str):
        super().__init__(
            f"job {job_key} ({kind!r}) failed after {attempts} attempt(s): {error}"
        )
        self.job_key = job_key
        self.kind = kind
        self.attempts = attempts
        self.error = error


@dataclass
class _Job:
    """Dispatcher-side state of one submitted job."""

    spec: JobSpec
    status: str = "pending"  # pending | leased | done | failed
    attempts: int = 0  # claims granted so far
    worker_id: str = ""
    lease_deadline: float = 0.0
    last_error: str = ""


@dataclass
class _WorkerConn:
    """One attached worker connection."""

    worker_id: str
    writer: asyncio.StreamWriter
    last_seen: float
    current: str | None = None  # key of the leased job, if any
    goodbye: bool = False


class Dispatcher:
    """Serve a queue of campaign jobs to socket-attached workers.

    Parameters
    ----------
    host, port:
        Listen address; port 0 binds an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    lease_seconds:
        How long a claim stays valid without a heartbeat.
    heartbeat_seconds:
        Expected worker heartbeat interval; the watchdog ticks at half this.
    max_attempts:
        Claims granted to one job before its failure becomes permanent.
    on_event:
        Optional callback receiving typed telemetry events (worker attach,
        job started/requeued/done, ...).  Called on the event loop; must not
        block.  Every event also reaches the telemetry ``bus`` regardless.
    bus:
        Telemetry bus to publish on; defaults to the process-wide
        :func:`~repro.experiments.telemetry.bus.global_bus`.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 30.0,
        heartbeat_seconds: float = 1.0,
        max_attempts: int = 3,
        on_event: EventCallback | None = None,
        bus: TelemetryBus | None = None,
    ):
        self.host = host
        self.port = port
        self.lease_seconds = float(lease_seconds)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.max_attempts = int(max_attempts)
        self.on_event = on_event
        self.bus = bus if bus is not None else global_bus()
        self._jobs: dict[str, _Job] = {}
        self._queue: deque[str] = deque()
        self._workers: dict[str, _WorkerConn] = {}
        self._server: asyncio.base_events.Server | None = None
        self._watchdog: asyncio.Task[None] | None = None
        self._handlers: set[asyncio.Task[Any]] = set()
        # ("result", JobResult) / ("error", FleetJobError) items.
        self.results: asyncio.Queue[tuple[str, Any]] = asyncio.Queue()

    # -- lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the lease watchdog."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_FRAME_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._watchdog = asyncio.get_running_loop().create_task(self._tick_loop())
        _LOGGER.info("dispatcher listening on %s:%d", self.host, self.port)

    async def close(self) -> None:
        """Stop serving: close the socket and every worker connection."""
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except asyncio.CancelledError:
                pass
            self._watchdog = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._workers.values()):
            conn.writer.close()
        self._workers.clear()
        if self._handlers:
            # Closed transports feed EOF to each handler's readline; wait for
            # them to unwind so event-loop teardown never cancels one mid-read.
            await asyncio.wait(list(self._handlers), timeout=5.0)

    # -- submission ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> bool:
        """Enqueue one job; duplicates (same content hash) are ignored."""
        if spec.key in self._jobs:
            return False
        self._jobs[spec.key] = _Job(spec=spec)
        self._queue.append(spec.key)
        self._emit(JobQueued(key=spec.key, kind=spec.kind))
        self._dispatch_to_idle()
        return True

    @property
    def worker_count(self) -> int:
        """Number of currently attached workers."""
        return len(self._workers)

    @property
    def unfinished(self) -> int:
        """Jobs not yet in a terminal state."""
        return sum(1 for job in self._jobs.values() if job.status in ("pending", "leased"))

    # -- connection handling ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        conn: _WorkerConn | None = None
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                hello = decode_frame(line)
            except ProtocolError as exc:
                _LOGGER.warning("rejecting connection: %s", exc)
                return
            if not isinstance(hello, WorkerHello):
                _LOGGER.warning(
                    "rejecting connection: first frame was %s, not WorkerHello",
                    hello.TYPE_NAME,
                )
                return
            if hello.worker_id in self._workers:
                _LOGGER.warning(
                    "rejecting duplicate worker id %r", hello.worker_id
                )
                return
            conn = _WorkerConn(
                worker_id=hello.worker_id,
                writer=writer,
                last_seen=self._now(),
            )
            self._workers[hello.worker_id] = conn
            self._emit(WorkerJoined(worker=hello.worker_id, pid=hello.pid))
            self._offer(conn)
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_frame(line)
                except ProtocolError as exc:
                    _LOGGER.warning("worker %s sent a bad frame: %s", conn.worker_id, exc)
                    break
                conn.last_seen = self._now()
                if self._handle_message(conn, message):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            if conn is not None:
                self._workers.pop(conn.worker_id, None)
                if conn.current is not None:
                    self._requeue(conn.current, reason="worker-lost")
                self._emit(
                    WorkerLeft(
                        worker=conn.worker_id,
                        reason="goodbye" if conn.goodbye else "connection-lost",
                    )
                )
            writer.close()

    def _handle_message(self, conn: _WorkerConn, message: Message) -> bool:
        """Process one frame; returns True when the connection should close."""
        if isinstance(message, Heartbeat):
            job = self._jobs.get(message.job_key) if message.job_key else None
            if job is not None and job.status == "leased" and job.worker_id == conn.worker_id:
                job.lease_deadline = self._now() + self.lease_seconds
            return False
        if isinstance(message, JobDone):
            self._finish(conn, message)
            return False
        if isinstance(message, JobFailed):
            self._fail(conn, message)
            return False
        if isinstance(message, JobSubmit):
            self.submit(JobSpec.make(message.kind, **message.params))
            return False
        if isinstance(message, WorkerGoodbye):
            conn.goodbye = True
            return True
        _LOGGER.warning(
            "worker %s sent unexpected %s frame", conn.worker_id, message.TYPE_NAME
        )
        return False

    # -- job state transitions -------------------------------------------------------

    def _offer(self, conn: _WorkerConn) -> None:
        """Grant the next pending job to an idle worker, if any."""
        if conn.current is not None:
            return
        if self._now() - conn.last_seen > self.lease_seconds:
            # Silent for a whole lease: presumed hung.  Its expired job was
            # requeued; don't hand the same worker more work until it speaks
            # again (a heartbeat or a late reply resets last_seen).
            return
        while self._queue:
            key = self._queue.popleft()
            job = self._jobs[key]
            if job.status != "pending":
                continue  # finished by a racing duplicate while queued
            job.status = "leased"
            job.attempts += 1
            job.worker_id = conn.worker_id
            job.lease_deadline = self._now() + self.lease_seconds
            conn.current = key
            claim = JobClaim(
                job_key=key,
                kind=job.spec.kind,
                params=job.spec.param_dict(),
                lease_seconds=self.lease_seconds,
                attempt=job.attempts,
            )
            conn.writer.write(encode_frame(claim))
            self._emit(
                JobStarted(
                    key=key,
                    kind=job.spec.kind,
                    worker=conn.worker_id,
                    attempt=job.attempts,
                )
            )
            return

    def _dispatch_to_idle(self) -> None:
        for conn in self._workers.values():
            if not self._queue:
                return
            self._offer(conn)

    def _finish(self, conn: _WorkerConn, message: JobDone) -> None:
        job = self._jobs.get(message.job_key)
        if conn.current == message.job_key:
            conn.current = None
        if job is None or job.status in ("done", "failed"):
            # Late completion of a requeued job whose replacement already
            # finished; executions are deterministic replicas, drop it.
            self._offer(conn)
            return
        job.status = "done"
        result = JobResult(
            key=job.spec.key,
            kind=job.spec.kind,
            metrics=decode_metrics(message.metrics),
            elapsed=float(message.elapsed),
        )
        self.results.put_nowait(("result", result))
        self._emit(
            JobFinished(
                key=job.spec.key,
                kind=job.spec.kind,
                metrics=dict(message.metrics),
                duration_s=float(message.elapsed),
                worker=conn.worker_id,
                attempt=job.attempts,
            )
        )
        self._offer(conn)

    def _fail(self, conn: _WorkerConn, message: JobFailed) -> None:
        job = self._jobs.get(message.job_key)
        if conn.current == message.job_key:
            conn.current = None
        if job is None or job.status in ("done", "failed"):
            self._offer(conn)
            return
        job.last_error = message.error
        if message.traceback:
            _LOGGER.warning(
                "job %s failed on worker %s:\n%s",
                message.job_key,
                conn.worker_id,
                message.traceback,
            )
        if job.attempts >= self.max_attempts:
            job.status = "failed"
            self.results.put_nowait(
                (
                    "error",
                    FleetJobError(job.spec.key, job.spec.kind, job.attempts, job.last_error),
                )
            )
            self._emit(
                JobError(
                    key=job.spec.key,
                    kind=job.spec.kind,
                    error=job.last_error,
                    attempts=job.attempts,
                )
            )
        else:
            self._requeue(message.job_key, reason="job-error")
        self._offer(conn)

    def _requeue(self, key: str, *, reason: str) -> None:
        job = self._jobs.get(key)
        if job is None or job.status != "leased":
            return
        job.status = "pending"
        job.worker_id = ""
        job.lease_deadline = 0.0
        self._queue.append(key)
        self._emit(
            JobRequeued(
                key=key, kind=job.spec.kind, reason=reason, attempt=job.attempts
            )
        )
        self._dispatch_to_idle()

    # -- watchdog --------------------------------------------------------------------

    async def _tick_loop(self) -> None:
        interval = max(self.heartbeat_seconds / 2.0, 0.01)
        while True:
            await asyncio.sleep(interval)
            self._expire_leases()

    def _expire_leases(self) -> None:
        now = self._now()
        for key, job in self._jobs.items():
            if job.status == "leased" and job.lease_deadline < now:
                holder = self._workers.get(job.worker_id)
                if holder is not None and holder.current == key:
                    # The worker is presumed hung: take the job away.  Its
                    # connection stays open so a late JobDone is still
                    # drained (and dropped as a duplicate).
                    holder.current = None
                self._requeue(key, reason="lease-expired")

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _now() -> float:
        return asyncio.get_running_loop().time()

    def _emit(self, event: TelemetryEvent) -> None:
        """Publish to the telemetry bus, then the legacy callback."""
        event = self.bus.publish(event)
        if self.on_event is not None:
            self.on_event(event)
