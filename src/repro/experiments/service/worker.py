"""Campaign worker: attach to a dispatcher over TCP and execute jobs.

A worker is one process that connects to a running
:class:`~repro.experiments.service.dispatcher.Dispatcher`, announces itself
with :class:`~.protocol.WorkerHello`, and then executes every
:class:`~.protocol.JobClaim` it is granted through the same
:func:`repro.experiments.campaign.execute_job` path the in-process executors
use — each job re-derives its seed from its spec, so a fleet of divergent
workers converges on the exact tables a serial run produces.

Execution runs on a helper thread so the asyncio loop keeps sending
heartbeats while a long ADMM solve holds the CPU; the heartbeats carry the
current job key and extend its lease.  Results are written through the
artifact store *before* the :class:`~.protocol.JobDone` frame is sent, so a
dispatcher crash never loses a finished cell.

Run standalone (detachable: start and stop workers while a campaign runs)::

    python -m repro.experiments.service --host 127.0.0.1 --port 7777

or programmatically via :func:`run_worker` /
:func:`repro.experiments.service.fleet.spawn_worker_process`.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import traceback
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any

from repro.experiments.campaign import ArtifactStore, JobSpec, execute_job
from repro.experiments.service.protocol import (
    MAX_FRAME_BYTES,
    Heartbeat,
    JobClaim,
    JobDone,
    JobFailed,
    ProtocolError,
    WorkerGoodbye,
    WorkerHello,
    decode_frame,
    encode_frame,
    encode_metrics,
)
from repro.experiments.telemetry.bus import JsonlSink, TelemetryBus
from repro.experiments.telemetry.events import JobError, JobFinished, JobStarted
from repro.utils.cache import DiskCache
from repro.utils.logging import get_logger, set_verbosity
from repro.zoo.registry import ModelRegistry

__all__ = ["Worker", "run_worker", "main"]

_LOGGER = get_logger("experiments.service.worker")


class Worker:
    """One socket-attached campaign worker.

    Parameters
    ----------
    host, port:
        Dispatcher address.
    worker_id:
        Stable identity on the wire; defaults to ``worker-<pid>``.
    cache_dir, cache_disabled:
        Model-registry disk cache the worker's jobs load victim models from
        (the same contract as the pool executors' ``_init_worker``).
    artifact_dir:
        When given, finished results are written through an
        :class:`~repro.experiments.campaign.ArtifactStore` rooted there
        before the JobDone frame is sent.
    heartbeat_seconds:
        Interval of the liveness beacon that extends job leases.
    max_jobs:
        Detach gracefully (WorkerGoodbye) after this many completed claims;
        ``None`` means serve until the dispatcher closes the connection.
    telemetry_log:
        When given, the worker appends its own local job lifecycle events
        (started/finished/failed, as seen from this process) to that
        JSON-lines file via a *private* telemetry bus — the dispatcher's
        stream stays authoritative; this is a per-worker audit trail.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: str | None = None,
        cache_dir: str | None = None,
        cache_disabled: bool = False,
        artifact_dir: str | None = None,
        heartbeat_seconds: float = 1.0,
        max_jobs: int | None = None,
        telemetry_log: str | None = None,
    ):
        self.host = host
        self.port = int(port)
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.max_jobs = max_jobs
        self.bus = TelemetryBus()
        self._telemetry_sink = (
            self.bus.attach(JsonlSink(telemetry_log)) if telemetry_log else None
        )
        if cache_disabled:
            self.registry: ModelRegistry | None = ModelRegistry(DiskCache(enabled=False))
        elif cache_dir is not None:
            self.registry = ModelRegistry(DiskCache(cache_dir))
        else:
            self.registry = None
        self.store = ArtifactStore(artifact_dir) if artifact_dir is not None else None
        self.jobs_completed = 0
        self._current_key = ""

    async def run(self) -> int:
        """Attach, serve claims until detached; returns jobs completed."""
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES
        )
        executor = ThreadPoolExecutor(max_workers=1)
        heartbeat: asyncio.Task[None] | None = None
        try:
            writer.write(encode_frame(WorkerHello(worker_id=self.worker_id, pid=os.getpid())))
            await writer.drain()
            heartbeat = asyncio.get_running_loop().create_task(self._beat(writer))
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_frame(line)
                except ProtocolError as exc:
                    _LOGGER.warning("dropping bad frame from dispatcher: %s", exc)
                    continue
                if not isinstance(message, JobClaim):
                    _LOGGER.warning("ignoring unexpected %s frame", message.TYPE_NAME)
                    continue
                await self._execute_claim(message, writer, executor)
                if self.max_jobs is not None and self.jobs_completed >= self.max_jobs:
                    writer.write(
                        encode_frame(
                            WorkerGoodbye(worker_id=self.worker_id, reason="max-jobs")
                        )
                    )
                    await writer.drain()
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
            executor.shutdown(wait=False, cancel_futures=True)
            writer.close()
            if self._telemetry_sink is not None:
                self._telemetry_sink.close()
        return self.jobs_completed

    async def _execute_claim(
        self,
        claim: JobClaim,
        writer: asyncio.StreamWriter,
        executor: ThreadPoolExecutor,
    ) -> None:
        spec = JobSpec.make(claim.kind, **claim.params)
        self._current_key = claim.job_key
        self.bus.publish(
            JobStarted(
                key=claim.job_key,
                kind=claim.kind,
                worker=self.worker_id,
                attempt=claim.attempt,
            )
        )
        reply: JobDone | JobFailed
        try:
            if spec.key != claim.job_key:
                raise ProtocolError(
                    f"claim integrity failure: dispatcher key {claim.job_key} != "
                    f"locally recomputed key {spec.key}"
                )
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                executor, partial(execute_job, spec, registry=self.registry)
            )
            if self.store is not None:
                self.store.store(result)
            reply = JobDone(
                worker_id=self.worker_id,
                job_key=claim.job_key,
                metrics=encode_metrics(result.metrics),
                elapsed=result.elapsed,
            )
            self.jobs_completed += 1
            self.bus.publish(
                JobFinished(
                    key=claim.job_key,
                    kind=claim.kind,
                    metrics=reply.metrics,
                    duration_s=result.elapsed,
                    worker=self.worker_id,
                    attempt=claim.attempt,
                )
            )
        except Exception as exc:  # noqa: BLE001 - reported to the dispatcher
            reply = JobFailed(
                worker_id=self.worker_id,
                job_key=claim.job_key,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
            )
            self.bus.publish(
                JobError(
                    key=claim.job_key,
                    kind=claim.kind,
                    error=reply.error,
                    attempts=claim.attempt,
                )
            )
        finally:
            self._current_key = ""
        writer.write(encode_frame(reply))
        await writer.drain()

    async def _beat(self, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_seconds)
                writer.write(
                    encode_frame(
                        Heartbeat(worker_id=self.worker_id, job_key=self._current_key)
                    )
                )
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass


def run_worker(
    host: str,
    port: int,
    **kwargs: Any,
) -> int:
    """Synchronous wrapper: attach one worker and serve until detached."""
    return asyncio.run(Worker(host, port, **kwargs).run())


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for a standalone, detachable worker process."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.service",
        description="Attach one campaign worker to a running dispatcher.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="dispatcher host")
    parser.add_argument("--port", type=int, required=True, help="dispatcher port")
    parser.add_argument("--worker-id", default=None, help="wire identity (default: worker-<pid>)")
    parser.add_argument(
        "--cache-dir", default=None, help="model-registry disk cache directory"
    )
    parser.add_argument(
        "--cache-disabled",
        action="store_true",
        help="run with the model disk cache disabled (forced retraining)",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="write finished results through an artifact store rooted here",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="heartbeat interval (default: 1.0)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="detach gracefully after N completed jobs",
    )
    parser.add_argument(
        "--telemetry-log",
        default=None,
        metavar="PATH",
        help="append this worker's local job events to a JSON-lines file",
    )
    parser.add_argument("--verbose", action="store_true", help="log job progress to stderr")
    args = parser.parse_args(argv)
    set_verbosity("info" if args.verbose else "warning")
    completed = run_worker(
        args.host,
        args.port,
        worker_id=args.worker_id,
        cache_dir=args.cache_dir,
        cache_disabled=args.cache_disabled,
        artifact_dir=args.artifact_dir,
        heartbeat_seconds=args.heartbeat,
        max_jobs=args.max_jobs,
        telemetry_log=args.telemetry_log,
    )
    _LOGGER.info("worker detached after %d job(s)", completed)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
