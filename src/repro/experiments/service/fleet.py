"""Fleet executor: dispatcher + detachable worker subprocesses, one backend.

``FleetExecutor`` gives the campaign engine a fourth backend with the same
``run(campaign, *, registry, on_event)`` contract as the in-process
executors, but built on the campaign service: it starts an asyncio
:class:`~repro.experiments.service.dispatcher.Dispatcher` on an ephemeral
localhost port, submits the pending jobs, spawns ``config.jobs`` worker
subprocesses that attach over the socket, and yields results back to the
caller as they complete.  Because job execution derives every seed from the
job spec, a fleet run reproduces the serial tables byte for byte — including
when a worker is killed mid-run and its leased jobs are requeued.

Set ``ExecutorConfig(spawn_workers=False)`` (or ``--workers 0`` on the CLI)
for *detached* operation: the dispatcher waits for externally started
workers (``python -m repro.experiments.service``) instead of
spawning its own, and the chosen port is surfaced through the
``dispatcher-ready`` event and a log line.
"""

from __future__ import annotations

import asyncio
import os
import queue
import subprocess
import sys
import threading
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

import repro
from repro.experiments.campaign import (
    Campaign,
    EventCallback,
    Executor,
    JobResult,
    JobSpec,
    _worker_registry_config,
)
from repro.zoo.registry import ModelRegistry
from repro.experiments.service.dispatcher import Dispatcher, FleetJobError
from repro.experiments.telemetry.events import DispatcherUp
from repro.utils.logging import get_logger

__all__ = ["FleetExecutor", "spawn_worker_process"]

_LOGGER = get_logger("experiments.service.fleet")

# How long the result consumer sleeps between liveness checks of the spawned
# worker processes; purely a responsiveness knob, not a correctness one.
_POLL_SECONDS = 0.25


def spawn_worker_process(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    cache_dir: str | None = None,
    cache_disabled: bool = False,
    artifact_dir: str | None = None,
    heartbeat_seconds: float | None = None,
) -> subprocess.Popen[bytes]:
    """Start one worker subprocess attached to ``host:port``.

    The child runs ``python -m repro.experiments.service`` with the
    parent's environment plus a ``PYTHONPATH`` guaranteeing the parent's
    ``repro`` package is importable (the parent may be running from a source
    tree that is not installed).
    """
    command = [
        sys.executable,
        "-m",
        "repro.experiments.service",
        "--host",
        host,
        "--port",
        str(port),
    ]
    if worker_id is not None:
        command += ["--worker-id", worker_id]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    if cache_disabled:
        command += ["--cache-disabled"]
    if artifact_dir is not None:
        command += ["--artifact-dir", str(artifact_dir)]
    if heartbeat_seconds is not None:
        command += ["--heartbeat", str(heartbeat_seconds)]
    env = os.environ.copy()
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = package_root if not existing else os.pathsep.join(
        [package_root, existing]
    )
    return subprocess.Popen(command, env=env)


class FleetExecutor(Executor):
    """Run jobs on a fleet of socket-attached worker processes."""

    name = "fleet"
    parallel = True

    def run(
        self,
        campaign: "Campaign | Iterable[JobSpec]",
        *,
        registry: ModelRegistry | None = None,
        on_event: EventCallback | None = None,
    ) -> Iterator[JobResult]:
        """Yield one result per pending job as the fleet completes them."""
        specs = self._pending_specs(campaign)
        if not specs:
            return
        out: queue.Queue[tuple[str, Any]] = queue.Queue()
        cache_dir, cache_disabled = _worker_registry_config(registry)
        cache_dir = self.config.cache_dir or cache_dir
        thread = threading.Thread(
            target=self._thread_main,
            args=(specs, cache_dir, cache_disabled, on_event, out),
            name="fleet-dispatcher",
            daemon=True,
        )
        thread.start()
        try:
            while True:
                kind, payload = out.get()
                if kind == "result":
                    yield payload
                elif kind == "error":
                    raise payload
                else:  # "end"
                    break
        finally:
            thread.join()

    def _thread_main(
        self,
        specs: list[JobSpec],
        cache_dir: str | None,
        cache_disabled: bool,
        on_event: EventCallback | None,
        out: "queue.Queue[tuple[str, Any]]",
    ) -> None:
        try:
            asyncio.run(
                self._serve(specs, cache_dir, cache_disabled, on_event, out)
            )
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            out.put(("error", exc))
        finally:
            out.put(("end", None))

    async def _serve(
        self,
        specs: list[JobSpec],
        cache_dir: str | None,
        cache_disabled: bool,
        on_event: EventCallback | None,
        out: "queue.Queue[tuple[str, Any]]",
    ) -> None:
        config = self.config
        dispatcher = Dispatcher(
            host=config.host,
            port=config.port,
            lease_seconds=config.lease_seconds,
            heartbeat_seconds=config.heartbeat_seconds,
            max_attempts=config.max_attempts,
            on_event=on_event,
        )
        await dispatcher.start()
        dispatcher._emit(
            DispatcherUp(
                host=dispatcher.host, port=dispatcher.port, jobs=len(specs)
            )
        )
        if not config.spawn_workers:
            _LOGGER.warning(
                "fleet dispatcher waiting for external workers on %s:%d "
                "(python -m repro.experiments.service --port %d)",
                dispatcher.host,
                dispatcher.port,
                dispatcher.port,
            )
        for spec in specs:
            dispatcher.submit(spec)
        workers: list[subprocess.Popen[bytes]] = []
        if config.spawn_workers:
            workers = [
                spawn_worker_process(
                    dispatcher.host,
                    dispatcher.port,
                    worker_id=f"fleet-{index}-{os.getpid()}",
                    cache_dir=cache_dir,
                    cache_disabled=cache_disabled,
                    artifact_dir=config.artifact_dir,
                    heartbeat_seconds=config.heartbeat_seconds,
                )
                for index in range(config.jobs)
            ]
        try:
            received = 0
            while received < len(specs):
                try:
                    kind, payload = await asyncio.wait_for(
                        dispatcher.results.get(), timeout=_POLL_SECONDS
                    )
                except asyncio.TimeoutError:
                    self._check_fleet_alive(workers, dispatcher)
                    continue
                if kind == "error":
                    raise payload
                out.put(("result", payload))
                received += 1
        finally:
            # Closing the dispatcher closes every worker connection; workers
            # exit on EOF, so give them a moment before escalating to
            # SIGTERM/SIGKILL.
            await dispatcher.close()
            deadline = asyncio.get_running_loop().time() + 3.0
            while (
                any(proc.poll() is None for proc in workers)
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.05)
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    @staticmethod
    def _check_fleet_alive(
        workers: "list[subprocess.Popen[bytes]]", dispatcher: Dispatcher
    ) -> None:
        """Fail fast when every spawned worker died with work still queued.

        Detached fleets (no spawned workers) wait indefinitely: operators
        attach and detach workers at will.
        """
        if not workers:
            return
        if dispatcher.worker_count > 0:
            return
        if all(proc.poll() is not None for proc in workers) and dispatcher.unfinished:
            codes = [proc.returncode for proc in workers]
            raise RuntimeError(
                f"all {len(workers)} fleet workers exited (exit codes {codes}) "
                f"with {dispatcher.unfinished} job(s) unfinished; see worker "
                "stderr for the underlying failure"
            )
