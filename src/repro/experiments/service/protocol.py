"""Typed, versioned wire protocol of the campaign service.

The dispatcher and its workers exchange *messages*: small frozen dataclasses,
one type per event, each carrying an explicit ``TypeName`` and ``Version``
field on the wire (the one-small-frozen-type-per-message protocol layer of
gridworks-scada's ``gwsproto.named_types`` is the model).  The discipline
buys three things a raw pickle stream cannot:

* **auditability** — every frame is a line of canonical JSON, readable in a
  packet capture or a log file;
* **compatibility** — a dispatcher can reject a worker speaking a future
  protocol revision with a typed error instead of a deserialisation crash,
  and old payloads remain parseable for as long as their version is listed;
* **safety** — decoding never executes code (unlike pickle), so a campaign
  service can listen on a socket without trusting its peers' bytecode.

Encoding is strict and canonical: ``to_json`` emits sorted keys with minimal
separators, and ``decode_message(message.to_json())`` returns an equal
message whose ``to_json`` is byte-for-byte identical.  Unknown type names,
unsupported versions, missing/unknown fields and malformed payloads each
raise a dedicated :class:`ProtocolError` subclass.

Frames on the socket are newline-delimited UTF-8 JSON: one message per line,
no embedded newlines (JSON escapes them), terminated by ``\\n``.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, fields
from typing import Any, ClassVar

__all__ = [
    "ProtocolError",
    "UnknownMessageType",
    "UnsupportedVersion",
    "MalformedMessage",
    "Message",
    "register_message",
    "message_types",
    "registered_messages",
    "decode_message",
    "encode_frame",
    "decode_frame",
    "encode_metrics",
    "decode_metrics",
    "MAX_FRAME_BYTES",
    "WorkerHello",
    "WorkerGoodbye",
    "Heartbeat",
    "JobSubmit",
    "JobClaim",
    "JobDone",
    "JobFailed",
]

# Upper bound on one frame; a JobClaim carries a full parameter dictionary
# but campaign cells are scalar grids, so a megabyte is generous.  Stream
# readers must be created with at least this limit.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """Base class for every wire-protocol violation."""


class UnknownMessageType(ProtocolError):
    """The payload's ``TypeName`` is not in the message registry."""


class UnsupportedVersion(ProtocolError):
    """The payload's ``Version`` is not supported for its message type."""


class MalformedMessage(ProtocolError):
    """The payload is not valid JSON or violates its type's field contract."""


# -- registry ------------------------------------------------------------------------

_MESSAGE_TYPES: dict[str, type["Message"]] = {}


def register_message(cls: type["Message"]) -> type["Message"]:
    """Class decorator adding a message type to the decode registry."""
    name = cls.TYPE_NAME
    existing = _MESSAGE_TYPES.get(name)
    if existing is not None and existing is not cls:
        raise ProtocolError(f"message type {name!r} is already registered")
    _MESSAGE_TYPES[name] = cls
    return cls


def message_types() -> tuple[str, ...]:
    """Return the registered ``TypeName`` strings, sorted."""
    return tuple(sorted(_MESSAGE_TYPES))


def registered_messages() -> dict[str, type["Message"]]:
    """Return a copy of the decode registry (``TypeName`` -> message class).

    Public so the static-analysis checker (``repro.analysis.lint``) can
    verify protocol conformance — every subclass frozen, versioned and
    registered — and snapshot the wire schema without reaching into
    privates.
    """
    return dict(_MESSAGE_TYPES)


# -- base message --------------------------------------------------------------------


@dataclass(frozen=True)
class Message:
    """Base class of all wire messages: frozen payload + TypeName/Version.

    Subclasses declare scalar (or JSON-native dict) fields only; the wire
    form is the field dictionary plus ``TypeName`` and ``Version``.  A
    subclass bumps ``VERSION`` when its field contract changes and lists the
    revisions it still accepts in ``SUPPORTED_VERSIONS``.
    """

    TYPE_NAME: ClassVar[str] = ""
    VERSION: ClassVar[str] = "100"
    # Versions this build can still decode; by default only the current one.
    SUPPORTED_VERSIONS: ClassVar[tuple[str, ...]] = ("100",)

    def as_dict(self) -> dict[str, Any]:
        """Wire-form dictionary (TypeName/Version plus every field)."""
        payload: dict[str, Any] = {
            "TypeName": self.TYPE_NAME,
            "Version": self.VERSION,
        }
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, minimal separators)."""
        try:
            return json.dumps(
                self.as_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
            )
        except (TypeError, ValueError) as exc:
            raise MalformedMessage(
                f"{type(self).__name__} holds a non-JSON-native field value: {exc}"
            ) from exc

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Message":
        """Decode one payload dictionary, enforcing the full field contract."""
        if not isinstance(payload, dict):
            raise MalformedMessage(
                f"{cls.TYPE_NAME}: payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        type_name = payload.get("TypeName")
        if type_name != cls.TYPE_NAME:
            raise MalformedMessage(
                f"{cls.__name__} cannot decode TypeName {type_name!r} "
                f"(expects {cls.TYPE_NAME!r})"
            )
        version = payload.get("Version")
        if version not in cls.SUPPORTED_VERSIONS:
            tense = "future" if str(version) > cls.VERSION else "unsupported"
            raise UnsupportedVersion(
                f"{cls.TYPE_NAME}: {tense} Version {version!r}; this build "
                f"supports {list(cls.SUPPORTED_VERSIONS)}"
            )
        declared = {spec.name: spec for spec in fields(cls)}
        given = {key for key in payload if key not in ("TypeName", "Version")}
        missing = sorted(set(declared) - given)
        if missing:
            raise MalformedMessage(f"{cls.TYPE_NAME}: missing field(s) {missing}")
        unknown = sorted(given - set(declared))
        if unknown:
            raise MalformedMessage(f"{cls.TYPE_NAME}: unknown field(s) {unknown}")
        kwargs: dict[str, Any] = {}
        for name, spec in declared.items():
            value = payload[name]
            expected = _FIELD_CHECKS.get(spec.type)
            if expected is not None and not expected(value):
                raise MalformedMessage(
                    f"{cls.TYPE_NAME}: field {name!r} must be {spec.type}, got "
                    f"{type(value).__name__}"
                )
            kwargs[name] = value
        return cls(**kwargs)


# Per-annotation wire checks.  Fields are deliberately limited to these
# shapes; anything richer belongs in the params/metrics dictionaries.
_FIELD_CHECKS: dict[str, Callable[[Any], bool]] = {
    "str": lambda v: isinstance(v, str),
    # bool is an int subclass but is not an acceptable wire integer.
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "dict": lambda v: isinstance(v, dict) and all(isinstance(k, str) for k in v),
}


def decode_message(text: str | bytes) -> Message:
    """Decode one JSON payload into its registered message type."""
    try:
        payload = json.loads(text)
    except (ValueError, UnicodeDecodeError) as exc:
        raise MalformedMessage(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise MalformedMessage(
            f"frame must decode to a JSON object, got {type(payload).__name__}"
        )
    type_name = payload.get("TypeName")
    if not isinstance(type_name, str):
        raise MalformedMessage("frame is missing a string 'TypeName' field")
    cls = _MESSAGE_TYPES.get(type_name)
    if cls is None:
        raise UnknownMessageType(
            f"unknown message type {type_name!r}; registered: {list(message_types())}"
        )
    return cls.from_dict(payload)


def encode_frame(message: Message) -> bytes:
    """Encode a message as one newline-terminated UTF-8 frame."""
    frame = message.to_json().encode("utf-8") + b"\n"
    if len(frame) > MAX_FRAME_BYTES:
        raise MalformedMessage(
            f"{message.TYPE_NAME}: frame of {len(frame)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return frame


def decode_frame(line: bytes) -> Message:
    """Decode one newline-terminated frame read from a stream."""
    if len(line) > MAX_FRAME_BYTES:
        raise MalformedMessage(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return decode_message(line)


# -- metric payload helpers ----------------------------------------------------------
# Job metrics are {name: float} with NaN sentinels ("undetectable" cells).
# Strict JSON has no NaN token, so the wire form uses null, mirroring the
# ArtifactStore's on-disk convention.


def encode_metrics(metrics: dict[str, float]) -> dict[str, float | None]:
    """Encode a metric dictionary for the wire (NaN becomes ``null``)."""
    return {
        name: None if value != value else float(value)
        for name, value in metrics.items()
    }


def decode_metrics(payload: dict[str, float | None]) -> dict[str, float]:
    """Decode a wire metric dictionary (``null`` becomes NaN)."""
    return {
        name: float("nan") if value is None else float(value)
        for name, value in payload.items()
    }


# -- message types -------------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class WorkerHello(Message):
    """First frame a worker sends after connecting: identify and attach."""

    TYPE_NAME: ClassVar[str] = "campaign.worker.hello"

    worker_id: str
    pid: int


@register_message
@dataclass(frozen=True)
class WorkerGoodbye(Message):
    """Graceful detach; any job the worker still holds is requeued."""

    TYPE_NAME: ClassVar[str] = "campaign.worker.goodbye"

    worker_id: str
    reason: str


@register_message
@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic liveness beacon; extends the lease of the job it names.

    ``job_key`` is the key of the job the worker is currently executing, or
    the empty string when idle.
    """

    TYPE_NAME: ClassVar[str] = "campaign.worker.heartbeat"

    worker_id: str
    job_key: str


@register_message
@dataclass(frozen=True)
class JobSubmit(Message):
    """Enqueue one job: a registered kind plus its JSON-native parameters."""

    TYPE_NAME: ClassVar[str] = "campaign.job.submit"

    kind: str
    params: dict


@register_message
@dataclass(frozen=True)
class JobClaim(Message):
    """Dispatcher grants one job to a worker under a lease.

    The worker must finish (JobDone/JobFailed) or keep heartbeating before
    ``lease_seconds`` elapse, or the dispatcher requeues the job.
    ``attempt`` counts claims of this job, starting at 1.
    """

    TYPE_NAME: ClassVar[str] = "campaign.job.claim"

    job_key: str
    kind: str
    params: dict
    lease_seconds: float
    attempt: int


@register_message
@dataclass(frozen=True)
class JobDone(Message):
    """Worker completed a job; metrics use the null-for-NaN convention."""

    TYPE_NAME: ClassVar[str] = "campaign.job.done"

    worker_id: str
    job_key: str
    metrics: dict
    elapsed: float


@register_message
@dataclass(frozen=True)
class JobFailed(Message):
    """Worker failed a job; the dispatcher retries or gives up."""

    TYPE_NAME: ClassVar[str] = "campaign.job.failed"

    worker_id: str
    job_key: str
    error: str
    traceback: str
