"""Typed, versioned wire protocol of the campaign service.

The dispatcher and its workers exchange *messages*: small frozen dataclasses,
one type per event, built on the canonical frame layer of
:mod:`repro.experiments.wire` (which this module re-exports for backward
compatibility).  See the wire module for the encoding discipline — canonical
sorted-key JSON, strict field validation, typed rejection of unknown types
and future versions, newline-delimited frames with a shared size cap.

This module declares the message family the fleet actually speaks:
``WorkerHello``/``WorkerGoodbye``, ``Heartbeat``, ``JobSubmit``,
``JobClaim``, ``JobDone`` and ``JobFailed``.  The telemetry event family
(``telemetry.*`` type names) lives in
:mod:`repro.experiments.telemetry.events`; both families share one decode
registry and one RPL004 schema snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.wire import (
    MAX_FRAME_BYTES,
    MalformedMessage,
    Message,
    ProtocolError,
    UnknownMessageType,
    UnsupportedVersion,
    decode_frame,
    decode_message,
    decode_metrics,
    encode_frame,
    encode_metrics,
    message_types,
    register_message,
    registered_messages,
)

__all__ = [
    "ProtocolError",
    "UnknownMessageType",
    "UnsupportedVersion",
    "MalformedMessage",
    "Message",
    "register_message",
    "message_types",
    "registered_messages",
    "decode_message",
    "encode_frame",
    "decode_frame",
    "encode_metrics",
    "decode_metrics",
    "MAX_FRAME_BYTES",
    "WorkerHello",
    "WorkerGoodbye",
    "Heartbeat",
    "JobSubmit",
    "JobClaim",
    "JobDone",
    "JobFailed",
]


@register_message
@dataclass(frozen=True)
class WorkerHello(Message):
    """First frame a worker sends after connecting: identify and attach."""

    TYPE_NAME: ClassVar[str] = "campaign.worker.hello"

    worker_id: str
    pid: int


@register_message
@dataclass(frozen=True)
class WorkerGoodbye(Message):
    """Graceful detach; any job the worker still holds is requeued."""

    TYPE_NAME: ClassVar[str] = "campaign.worker.goodbye"

    worker_id: str
    reason: str


@register_message
@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic liveness beacon; extends the lease of the job it names.

    ``job_key`` is the key of the job the worker is currently executing, or
    the empty string when idle.
    """

    TYPE_NAME: ClassVar[str] = "campaign.worker.heartbeat"

    worker_id: str
    job_key: str


@register_message
@dataclass(frozen=True)
class JobSubmit(Message):
    """Enqueue one job: a registered kind plus its JSON-native parameters."""

    TYPE_NAME: ClassVar[str] = "campaign.job.submit"

    kind: str
    params: dict


@register_message
@dataclass(frozen=True)
class JobClaim(Message):
    """Dispatcher grants one job to a worker under a lease.

    The worker must finish (JobDone/JobFailed) or keep heartbeating before
    ``lease_seconds`` elapse, or the dispatcher requeues the job.
    ``attempt`` counts claims of this job, starting at 1.
    """

    TYPE_NAME: ClassVar[str] = "campaign.job.claim"

    job_key: str
    kind: str
    params: dict
    lease_seconds: float
    attempt: int


@register_message
@dataclass(frozen=True)
class JobDone(Message):
    """Worker completed a job; metrics use the null-for-NaN convention."""

    TYPE_NAME: ClassVar[str] = "campaign.job.done"

    worker_id: str
    job_key: str
    metrics: dict
    elapsed: float


@register_message
@dataclass(frozen=True)
class JobFailed(Message):
    """Worker failed a job; the dispatcher retries or gives up."""

    TYPE_NAME: ClassVar[str] = "campaign.job.failed"

    worker_id: str
    job_key: str
    error: str
    traceback: str
