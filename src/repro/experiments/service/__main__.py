"""``python -m repro.experiments.service`` — run one detachable worker.

A thin delegate to :func:`repro.experiments.service.worker.main`.  Spawning
through the package (rather than ``-m repro.experiments.service.worker``)
avoids runpy re-executing the worker module under the name ``__main__``
after the package import already loaded it.
"""

from repro.experiments.service.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
