"""Campaign service: typed wire protocol, async dispatcher, worker fleet.

This package promotes the campaign engine from a single machine to a
long-running service:

==================  ================================================================
Module              Responsibility
==================  ================================================================
``protocol``        Small frozen, versioned message types (``JobSubmit``,
                    ``JobClaim``, ``JobDone``, ``JobFailed``, ``Heartbeat``,
                    ``WorkerHello``/``Goodbye``) with strict canonical JSON
                    round-trips and a registry that rejects unknown or future
                    versions; newline-delimited frame helpers.
``dispatcher``      Asyncio work queue with lease-based claims, heartbeat
                    tracking and dead-job requeue after lease expiry or worker
                    loss.
``worker``          Detachable worker process: attaches over a localhost TCP
                    socket, executes claims through ``execute_job`` and writes
                    results through the artifact store.  ``python -m
                    repro.experiments.service.worker`` runs one standalone.
``fleet``           ``FleetExecutor`` — the fourth campaign backend: dispatcher
                    plus ``jobs`` spawned (or externally attached) workers,
                    exposing the same ``run(campaign, *, registry, on_event)``
                    contract as the in-process executors.
==================  ================================================================

Determinism is inherited, not re-implemented: every job derives its seed from
its spec inside :func:`repro.experiments.campaign.execute_job`, so a fleet of
divergent workers reproduces the single-process tables byte for byte.
"""

from repro.experiments.service.dispatcher import Dispatcher, FleetJobError
from repro.experiments.service.fleet import FleetExecutor, spawn_worker_process
from repro.experiments.service.protocol import (
    Heartbeat,
    JobClaim,
    JobDone,
    JobFailed,
    JobSubmit,
    MalformedMessage,
    Message,
    ProtocolError,
    UnknownMessageType,
    UnsupportedVersion,
    WorkerGoodbye,
    WorkerHello,
    decode_frame,
    decode_message,
    encode_frame,
    message_types,
)
from repro.experiments.service.selftest import SELFTEST_KIND
from repro.experiments.service.worker import Worker, run_worker

__all__ = [
    "SELFTEST_KIND",
    "Dispatcher",
    "FleetJobError",
    "FleetExecutor",
    "spawn_worker_process",
    "Worker",
    "run_worker",
    "Message",
    "ProtocolError",
    "UnknownMessageType",
    "UnsupportedVersion",
    "MalformedMessage",
    "WorkerHello",
    "WorkerGoodbye",
    "Heartbeat",
    "JobSubmit",
    "JobClaim",
    "JobDone",
    "JobFailed",
    "decode_message",
    "decode_frame",
    "encode_frame",
    "message_types",
]
