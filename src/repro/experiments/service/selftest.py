"""Built-in diagnostic job kind for exercising the fleet path cheaply.

Lives in its own module (imported exactly once, via the package) rather than
in ``worker.py``: running ``python -m repro.experiments.service.worker``
loads that file a second time under the name ``__main__``, and a job kind
registered there would collide with its package-imported twin.

Worker *subprocesses* only see job kinds registered at package import time,
so test-local kinds cannot cross the socket; this one ships with the package
and lets the fleet tests and smoke checks drive the full
dispatcher/worker/requeue machinery without training a model.
"""

from __future__ import annotations

import time

from repro.experiments.campaign import register_job
from repro.zoo.registry import ModelRegistry

__all__ = ["SELFTEST_KIND"]

SELFTEST_KIND = "service-selftest"


@register_job(SELFTEST_KIND)
def _selftest_job(
    *,
    registry: ModelRegistry | None = None,
    value: float,
    sleep: float = 0.0,
    fail: bool = False,
) -> dict[str, float]:
    """Cheap arithmetic job with an optional delay and forced failure."""
    if fail:
        raise RuntimeError(f"selftest failure requested for value={value}")
    if sleep:
        time.sleep(float(sleep))
    return {"value": float(value), "square": float(value) * float(value)}
