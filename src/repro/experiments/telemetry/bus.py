"""The telemetry bus: publish typed events, fan out to pluggable sinks.

A :class:`TelemetryBus` is a tiny synchronous fan-out: producers call
:meth:`~TelemetryBus.publish` with a :class:`TelemetryEvent`, the bus stamps
the event's monotonic ``t`` timestamp (unless the producer already set one)
and hands it to every attached sink in attachment order.  Sinks are small
objects with an ``emit(event)`` method; this module ships the standard set:

* :class:`JsonlSink` — append canonical-JSON frames to a file
  (``--telemetry-log run.jsonl``); the file replays via :func:`read_events`;
* :class:`SocketSink` — a localhost TCP broadcast server; the dashboard (and
  any other consumer) connects and receives every event as a newline frame,
  including a replay of history on attach so late subscribers see the full
  run;
* :class:`CountingSink` — per-event-name counters (benchmarks, smoke tests);
* :class:`CallbackSink` — adapt a legacy ``on_event`` callable to the bus.

The process-wide default bus (:func:`global_bus`) is what the executors and
the dispatcher publish to; with no sinks attached, publishing only stamps the
timestamp, so instrumented code pays almost nothing when telemetry is off.  All bus and
sink operations are thread-safe — executors publish from worker threads and
the dispatcher from its own event-loop thread.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import Counter
from collections.abc import Callable, Iterable, Iterator
from dataclasses import replace
from pathlib import Path
from typing import IO, Any, Protocol

from repro.experiments.telemetry.events import TelemetryEvent
from repro.experiments.wire import decode_frame, encode_frame

__all__ = [
    "TelemetrySink",
    "TelemetryBus",
    "JsonlSink",
    "SocketSink",
    "CountingSink",
    "CallbackSink",
    "ConsoleSink",
    "global_bus",
    "read_events",
]


class TelemetrySink(Protocol):
    """Anything with an ``emit``: receives each published event, in order."""

    def emit(self, event: TelemetryEvent) -> None: ...


class TelemetryBus:
    """Synchronous fan-out of telemetry events to attached sinks.

    ``clock`` is the monotonic time source used to stamp events; tests
    inject a fake for deterministic timestamps.  A sink that raises does not
    stop delivery to the remaining sinks — telemetry must never take down
    the run it observes — but the first failure per sink is re-raised once
    the fan-out completes so tests surface broken sinks.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._sinks: list[TelemetrySink] = []
        self._lock = threading.Lock()

    def attach(self, sink: TelemetrySink) -> TelemetrySink:
        """Attach a sink; returns it so ``bus.attach(JsonlSink(...))`` chains."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def detach(self, sink: TelemetrySink) -> None:
        """Remove a sink; unknown sinks are ignored (idempotent teardown)."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    @property
    def sink_count(self) -> int:
        with self._lock:
            return len(self._sinks)

    def publish(self, event: TelemetryEvent) -> TelemetryEvent:
        """Stamp ``t`` (if unset) and deliver to every sink; returns the event."""
        if event.t == 0.0:
            event = replace(event, t=self._clock())
        with self._lock:
            sinks = tuple(self._sinks)
        if not sinks:
            return event
        failure: BaseException | None = None
        for sink in sinks:
            try:
                sink.emit(event)
            except BaseException as exc:  # noqa: BLE001 - isolate sink faults
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return event


# -- the process-wide default bus ----------------------------------------------------

_GLOBAL_BUS = TelemetryBus()


def global_bus() -> TelemetryBus:
    """The process-wide bus the executors and dispatcher publish to.

    Pool worker processes get a fresh, sinkless bus (module state does not
    survive the process boundary), so children never double-report; their
    results surface as events published by the parent's executor.
    """
    return _GLOBAL_BUS


# -- sinks ---------------------------------------------------------------------------


class JsonlSink:
    """Append each event to a file as one canonical-JSON line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[bytes] = open(self.path, "ab")
        self._lock = threading.Lock()
        self.events_written = 0

    def emit(self, event: TelemetryEvent) -> None:
        frame = encode_frame(event)
        with self._lock:
            self._handle.write(frame)
            self._handle.flush()
            self.events_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class CountingSink:
    """Count events by legacy short name; cheap enough for benchmarks."""

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()
        self._lock = threading.Lock()

    def emit(self, event: TelemetryEvent) -> None:
        with self._lock:
            self.counts[event.EVENT] += 1

    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self.counts.items()))

    def reset(self) -> None:
        with self._lock:
            self.counts.clear()


class CallbackSink:
    """Adapt a legacy ``on_event`` callable (events are mapping-compatible)."""

    def __init__(self, callback: Callable[[Any], None]) -> None:
        self._callback = callback

    def emit(self, event: TelemetryEvent) -> None:
        self._callback(event)


class ConsoleSink:
    """Human-oriented one-line-per-event rendering to a text stream."""

    def __init__(self, stream: IO[str], *, verbose: bool = False) -> None:
        self._stream = stream
        self._verbose = verbose
        self._lock = threading.Lock()

    def emit(self, event: TelemetryEvent) -> None:
        name = event.EVENT
        if name == "artifact-saved":
            # The runner's historical stderr contract.
            with self._lock:
                print(f"[saved {event['path']}]", file=self._stream, flush=True)
            return
        if not self._verbose and name not in (
            "run-started",
            "run-finished",
            "job-failed",
        ):
            return
        detail = " ".join(
            f"{key}={value}"
            for key, value in sorted(event.as_dict().items())
            if key not in ("TypeName", "Version", "t", "metrics")
        )
        with self._lock:
            print(f"[{name}] {detail}", file=self._stream, flush=True)


class _BroadcastHandler(socketserver.StreamRequestHandler):
    """Per-subscriber connection: replay history, then stream live frames."""

    def handle(self) -> None:
        sink: SocketSink = self.server.telemetry_sink  # type: ignore[attr-defined]
        send = self.connection.sendall
        with sink._lock:
            history = b"".join(sink._history)
            sink._subscribers[self.connection] = send
        try:
            if history:
                send(history)
            # Hold the connection open until the client hangs up or the
            # sink closes; frames arrive via the subscriber registry.
            while not sink._closed.is_set():
                data = self.connection.recv(1024)
                if not data:
                    break
        except OSError:
            pass
        finally:
            with sink._lock:
                sink._subscribers.pop(self.connection, None)


class _BroadcastServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SocketSink:
    """Localhost TCP broadcast of the event stream, one frame per line.

    Every event is appended to an in-memory history and pushed to all
    connected subscribers; a subscriber that attaches mid-run first receives
    the full history, so the dashboard can join late and still render every
    job.  Slow or dead subscribers are dropped rather than allowed to stall
    the publishing thread.
    """

    SEND_TIMEOUT_S = 2.0

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = _BroadcastServer((host, port), _BroadcastHandler)
        self._server.telemetry_sink = self  # type: ignore[attr-defined]
        self._history: list[bytes] = []
        self._subscribers: dict[socket.socket, Callable[[bytes], None]] = {}
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="telemetry-socket-sink",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def port(self) -> int:
        return self.address[1]

    def emit(self, event: TelemetryEvent) -> None:
        frame = encode_frame(event)
        with self._lock:
            self._history.append(frame)
            stale: list[socket.socket] = []
            for conn, send in self._subscribers.items():
                try:
                    conn.settimeout(self.SEND_TIMEOUT_S)
                    send(frame)
                except OSError:
                    stale.append(conn)
            for conn in stale:
                self._subscribers.pop(conn, None)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        with self._lock:
            for conn in list(self._subscribers):
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
            self._subscribers.clear()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "SocketSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- replay --------------------------------------------------------------------------


def read_events(source: str | Path | Iterable[bytes]) -> Iterator[TelemetryEvent]:
    """Decode a JSON-lines telemetry log back into typed events.

    ``source`` is a path to a ``run.jsonl`` file or any iterable of frame
    lines (e.g. a socket file object).  Non-telemetry frames raise
    :class:`~repro.experiments.wire.MalformedMessage` via the shared decode
    path; blank lines are skipped.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            yield from read_events(handle)
        return
    for line in source:
        line = line.strip()
        if not line:
            continue
        event = decode_frame(line)
        if not isinstance(event, TelemetryEvent):
            raise TypeError(
                f"frame decodes to {type(event).__name__}, not a telemetry event"
            )
        yield event
