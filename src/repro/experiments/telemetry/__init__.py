"""Structured telemetry for campaign runs: typed events, bus, sinks, metrics.

The package unifies what used to be three ad-hoc reporting paths (the
executors' ``on_event`` dictionaries, the dispatcher's event callbacks and
the runner's inline ``[saved ...]`` printing) behind one typed event stream:

* :mod:`~repro.experiments.telemetry.events` — the frozen event dataclasses
  (same TypeName/Version frame discipline as the fleet wire protocol, gated
  by the RPL004 schema snapshot);
* :mod:`~repro.experiments.telemetry.bus` — the publish/fan-out bus and the
  standard sinks (JSON-lines file, localhost socket broadcast, counters,
  legacy-callback adapter);
* :mod:`~repro.experiments.telemetry.aggregate` — fold an event stream into
  run metrics (job states, cache-hit rate, throughput, latency percentiles,
  Monte-Carlo CI widths).

The live dashboard (``python -m repro.experiments.dashboard``) consumes this
stream over a socket or from a finished ``run.jsonl``.
"""

from repro.experiments.telemetry.aggregate import JobView, RunAggregator, percentile
from repro.experiments.telemetry.bus import (
    CallbackSink,
    ConsoleSink,
    CountingSink,
    JsonlSink,
    SocketSink,
    TelemetryBus,
    TelemetrySink,
    global_bus,
    read_events,
)
from repro.experiments.telemetry.events import (
    TELEMETRY_TYPE_PREFIX,
    ArtifactSaved,
    DispatcherUp,
    JobCached,
    JobError,
    JobFinished,
    JobQueued,
    JobRequeued,
    JobStarted,
    RunFinished,
    RunStarted,
    TelemetryEvent,
    WorkerJoined,
    WorkerLeft,
    telemetry_event_types,
)

__all__ = [
    "TELEMETRY_TYPE_PREFIX",
    "ArtifactSaved",
    "CallbackSink",
    "ConsoleSink",
    "CountingSink",
    "DispatcherUp",
    "JobCached",
    "JobError",
    "JobFinished",
    "JobQueued",
    "JobRequeued",
    "JobStarted",
    "JobView",
    "JsonlSink",
    "RunAggregator",
    "RunFinished",
    "RunStarted",
    "SocketSink",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetrySink",
    "WorkerJoined",
    "WorkerLeft",
    "global_bus",
    "percentile",
    "read_events",
    "telemetry_event_types",
]
