"""In-memory aggregation of a telemetry stream into run-level metrics.

The :class:`RunAggregator` consumes telemetry events — live, as a bus sink,
or offline via :meth:`~RunAggregator.replay` over a ``run.jsonl`` — and
maintains the operator's view of a campaign:

* per-job state table (pending → running → done/cached/failed) with worker,
  attempt count and duration;
* run counters: total/executed/cached/failed, cache-hit rate;
* throughput (jobs per second of completed work, from monotonic ``t``
  stamps);
* per-kind latency percentiles (p50/p90/p99 over ``duration_s``);
* Monte-Carlo convergence: the confidence-interval half-widths stochastic
  cells report (``mc_*_ci`` metric keys from the lowering pipeline), so an
  operator can see whether more trials are still buying precision.

Because every input is a typed event with monotonic timestamps, replaying a
JSON-lines log through a fresh aggregator reproduces the live run's final
metrics exactly — the property the telemetry tests pin.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.telemetry.events import (
    ArtifactSaved,
    DispatcherUp,
    JobCached,
    JobError,
    JobFinished,
    JobQueued,
    JobRequeued,
    JobStarted,
    RunFinished,
    RunStarted,
    TelemetryEvent,
    WorkerJoined,
    WorkerLeft,
)

__all__ = ["JobView", "RunAggregator", "percentile"]

# Suffix convention for Monte-Carlo confidence-interval half-width metrics
# (see repro.attacks.lowering: mc_success_ci, mc_keep_ci, ...).
_MC_CI_SUFFIX = "_ci"
_MC_PREFIX = "mc_"


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class JobView:
    """Aggregator-side state of one campaign cell."""

    key: str
    kind: str
    state: str = "pending"  # pending | running | done | cached | failed
    worker: str = ""
    attempts: int = 0
    duration_s: float = float("nan")
    metrics: dict[str, Any] = field(default_factory=dict)


class RunAggregator:
    """Fold a telemetry event stream into run-level metrics.

    Usable directly as a bus sink (it has ``emit``).  All state mutations
    funnel through :meth:`emit`; thread-safety is the bus's synchronous
    fan-out — one event is delivered at a time.
    """

    def __init__(self) -> None:
        self.campaign = ""
        self.scale = ""
        self.executor = ""
        self.total_jobs = 0
        self.workers: dict[str, str] = {}  # worker id -> attached | detached
        self.jobs: dict[str, JobView] = {}
        self.artifacts: list[str] = []
        self.event_counts: Counter[str] = Counter()
        self.run_started_t = float("nan")
        self.run_finished_t = float("nan")
        self._last_t = float("nan")

    # -- ingestion -------------------------------------------------------------------

    def emit(self, event: TelemetryEvent) -> None:
        """Consume one event (bus-sink interface)."""
        self.event_counts[event.EVENT] += 1
        if event.t:
            self._last_t = event.t
        if isinstance(event, RunStarted):
            self.campaign = event.campaign
            self.scale = event.scale
            self.executor = event.executor
            self.total_jobs = event.total_jobs
            self.run_started_t = event.t
        elif isinstance(event, RunFinished):
            self.run_finished_t = event.t
        elif isinstance(event, JobQueued):
            self._job(event.key, event.kind)
        elif isinstance(event, JobStarted):
            job = self._job(event.key, event.kind)
            job.state = "running"
            job.worker = event.worker
            job.attempts = max(job.attempts, event.attempt)
        elif isinstance(event, JobFinished):
            job = self._job(event.key, event.kind)
            job.state = "done"
            job.worker = event.worker or job.worker
            job.attempts = max(job.attempts, event.attempt, 1)
            job.duration_s = event.duration_s
            job.metrics = dict(event.metrics)
        elif isinstance(event, JobCached):
            job = self._job(event.key, event.kind)
            job.state = "cached"
        elif isinstance(event, JobRequeued):
            job = self._job(event.key, event.kind)
            job.state = "pending"
            job.worker = ""
            job.attempts = max(job.attempts, event.attempt)
        elif isinstance(event, JobError):
            job = self._job(event.key, event.kind)
            job.state = "failed"
            job.attempts = max(job.attempts, event.attempts)
        elif isinstance(event, WorkerJoined):
            self.workers[event.worker] = "attached"
        elif isinstance(event, WorkerLeft):
            self.workers[event.worker] = "detached"
        elif isinstance(event, DispatcherUp):
            if not self.executor:
                self.executor = "fleet"
        elif isinstance(event, ArtifactSaved):
            self.artifacts.append(event.path)

    def replay(self, events: Iterable[TelemetryEvent]) -> "RunAggregator":
        """Consume an event iterable (e.g. ``read_events(path)``); chains."""
        for event in events:
            self.emit(event)
        return self

    def _job(self, key: str, kind: str) -> JobView:
        job = self.jobs.get(key)
        if job is None:
            job = JobView(key=key, kind=kind)
            self.jobs[key] = job
        elif kind and not job.kind:
            job.kind = kind
        return job

    # -- derived metrics -------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Job-state histogram, all five states always present."""
        states = Counter(job.state for job in self.jobs.values())
        return {
            state: states.get(state, 0)
            for state in ("pending", "running", "done", "cached", "failed")
        }

    @property
    def executed(self) -> int:
        return self.counts()["done"]

    @property
    def cache_hits(self) -> int:
        return self.counts()["cached"]

    def cache_hit_rate(self) -> float:
        """Cached fraction of all resolved cells (NaN before any resolve)."""
        resolved = self.executed + self.cache_hits
        if resolved == 0:
            return float("nan")
        return self.cache_hits / resolved

    def elapsed_s(self) -> float:
        """Monotonic span from run start to the latest event seen."""
        if self.run_started_t != self.run_started_t:
            return float("nan")
        end = self.run_finished_t
        if end != end:
            end = self._last_t
        return max(0.0, end - self.run_started_t)

    def jobs_per_second(self) -> float:
        """Resolved cells (executed + cached) per second of run time."""
        elapsed = self.elapsed_s()
        if elapsed != elapsed or elapsed <= 0.0:
            return float("nan")
        return (self.executed + self.cache_hits) / elapsed

    def latency_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-kind p50/p90/p99 over ``duration_s`` of completed jobs."""
        by_kind: dict[str, list[float]] = {}
        for job in self.jobs.values():
            if job.state == "done" and job.duration_s == job.duration_s:
                by_kind.setdefault(job.kind, []).append(job.duration_s)
        return {
            kind: {
                "p50": percentile(values, 50.0),
                "p90": percentile(values, 90.0),
                "p99": percentile(values, 99.0),
            }
            for kind, values in sorted(by_kind.items())
        }

    def mc_ci_widths(self) -> dict[str, dict[str, float]]:
        """Per-job Monte-Carlo CI half-widths (stochastic cells only)."""
        out: dict[str, dict[str, float]] = {}
        for key, job in sorted(self.jobs.items()):
            widths = {
                name: float(value)
                for name, value in job.metrics.items()
                if name.startswith(_MC_PREFIX)
                and name.endswith(_MC_CI_SUFFIX)
                and value is not None
            }
            if widths:
                out[key] = widths
        return out

    def snapshot(self) -> dict[str, Any]:
        """JSON-native summary of the run (dashboards, BENCH files, tests)."""
        return {
            "campaign": self.campaign,
            "scale": self.scale,
            "executor": self.executor,
            "total_jobs": self.total_jobs,
            "counts": self.counts(),
            "cache_hit_rate": self.cache_hit_rate(),
            "elapsed_s": self.elapsed_s(),
            "jobs_per_second": self.jobs_per_second(),
            "latency_percentiles": self.latency_percentiles(),
            "mc_ci_widths": self.mc_ci_widths(),
            "workers": dict(sorted(self.workers.items())),
            "event_counts": dict(sorted(self.event_counts.items())),
            "artifacts": list(self.artifacts),
        }
