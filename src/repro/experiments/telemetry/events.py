"""The telemetry event taxonomy: one frozen dataclass per campaign event.

Every observable state change of a campaign run — run start/finish, job
lifecycle, worker membership, dispatcher readiness, artifact writes — is one
typed event built on the same canonical frame layer as the fleet's wire
protocol (:mod:`repro.experiments.wire`): explicit ``TypeName``/``Version``,
canonical sorted-key JSON, strict decode, and coverage by the RPL004 schema
snapshot gate.  A telemetry stream is therefore replayable: a JSON-lines run
log decodes back into the exact event objects the live run published.

Event taxonomy (``TypeName`` → legacy short name):

======================== =================== ==================================
``telemetry.run.started``     ``run-started``     campaign accepted for execution
``telemetry.run.finished``    ``run-finished``    all cells resolved, stats final
``telemetry.job.queued``      ``job-submitted``   dispatcher accepted one job
``telemetry.job.started``     ``job-started``     execution began (or was leased)
``telemetry.job.finished``    ``job-done``        metrics + monotonic duration_s
``telemetry.job.cached``      ``job-cached``      artifact-store hit, not executed
``telemetry.job.requeued``    ``job-requeued``    lease lost / retryable failure
``telemetry.job.failed``      ``job-failed``      attempts exhausted, terminal
``telemetry.worker.joined``   ``worker-attached`` fleet worker said hello
``telemetry.worker.left``     ``worker-detached`` goodbye or connection lost
``telemetry.dispatcher.up``   ``dispatcher-ready`` socket bound, port known
``telemetry.artifact.saved``  ``artifact-saved``  CSV/manifest/log written
======================== =================== ==================================

Events are mapping-compatible (``event["event"]`` returns the legacy short
name, ``event["key"]`` reads a field) so pre-bus ``on_event`` consumers keep
working unchanged.

The ``t`` field is a *monotonic* timestamp stamped by the publishing
:class:`~repro.experiments.telemetry.bus.TelemetryBus` (``time.monotonic``,
never the wall clock — RPL002): differences between event times are real
durations, absolute values are only meaningful within one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.experiments.wire import Message, register_message

__all__ = [
    "TelemetryEvent",
    "RunStarted",
    "RunFinished",
    "JobQueued",
    "JobStarted",
    "JobFinished",
    "JobCached",
    "JobRequeued",
    "JobError",
    "WorkerJoined",
    "WorkerLeft",
    "DispatcherUp",
    "ArtifactSaved",
    "TELEMETRY_TYPE_PREFIX",
    "telemetry_event_types",
]

# Every telemetry TypeName starts with this; the dashboard's tail loop uses
# it to ignore non-telemetry frames on a shared socket.
TELEMETRY_TYPE_PREFIX = "telemetry."


@dataclass(frozen=True)
class TelemetryEvent(Message):
    """Behaviour-only base of every telemetry event (never on the wire).

    Adds the legacy short name (``EVENT``) and read-only mapping access so
    dictionary-era ``on_event`` callbacks (``event["event"]``,
    ``event.get("worker")``) consume typed events without changes.
    """

    ABSTRACT_BASE: ClassVar[bool] = True
    # Legacy short name, the pre-bus "event" dictionary key.
    EVENT: ClassVar[str] = ""

    def __getitem__(self, key: str) -> Any:
        if key == "event":
            return self.EVENT
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        """Mapping-style field access with a default (legacy consumers)."""
        try:
            return self[key]
        except KeyError:
            return default


@register_message
@dataclass(frozen=True)
class RunStarted(TelemetryEvent):
    """A campaign was accepted for execution (after dedupe, before cache scan)."""

    TYPE_NAME: ClassVar[str] = "telemetry.run.started"
    EVENT: ClassVar[str] = "run-started"

    campaign: str
    scale: str
    seed: int
    total_jobs: int
    executor: str
    jobs: int
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class RunFinished(TelemetryEvent):
    """Every cell of a campaign reached a terminal state."""

    TYPE_NAME: ClassVar[str] = "telemetry.run.finished"
    EVENT: ClassVar[str] = "run-finished"

    campaign: str
    total_jobs: int
    executed: int
    cache_hits: int
    executor: str
    jobs: int
    elapsed_s: float
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class JobQueued(TelemetryEvent):
    """The dispatcher accepted one job into its pending queue."""

    TYPE_NAME: ClassVar[str] = "telemetry.job.queued"
    EVENT: ClassVar[str] = "job-submitted"

    key: str
    kind: str
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class JobStarted(TelemetryEvent):
    """Execution of one cell began (serial/pool) or was leased (fleet).

    ``worker`` is empty for in-process executors; ``attempt`` counts claims
    of this job, starting at 1, and only exceeds 1 after a fleet requeue.
    """

    TYPE_NAME: ClassVar[str] = "telemetry.job.started"
    EVENT: ClassVar[str] = "job-started"

    key: str
    kind: str
    worker: str = ""
    attempt: int = 1
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class JobFinished(TelemetryEvent):
    """One cell completed; metrics use the null-for-NaN wire convention.

    ``duration_s`` is the cell's own monotonic execution time
    (``time.perf_counter`` around the job function), identical across
    executors for the same cell up to scheduling noise.
    """

    TYPE_NAME: ClassVar[str] = "telemetry.job.finished"
    EVENT: ClassVar[str] = "job-done"

    key: str
    kind: str
    metrics: dict
    duration_s: float
    worker: str = ""
    attempt: int = 1
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class JobCached(TelemetryEvent):
    """One cell was satisfied from the artifact store without executing."""

    TYPE_NAME: ClassVar[str] = "telemetry.job.cached"
    EVENT: ClassVar[str] = "job-cached"

    key: str
    kind: str
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class JobRequeued(TelemetryEvent):
    """A leased job went back to pending (lease expiry, worker loss, retry)."""

    TYPE_NAME: ClassVar[str] = "telemetry.job.requeued"
    EVENT: ClassVar[str] = "job-requeued"

    key: str
    kind: str
    reason: str
    attempt: int
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class JobError(TelemetryEvent):
    """A job exhausted its attempts; the failure is terminal for the run."""

    TYPE_NAME: ClassVar[str] = "telemetry.job.failed"
    EVENT: ClassVar[str] = "job-failed"

    key: str
    kind: str
    error: str
    attempts: int
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class WorkerJoined(TelemetryEvent):
    """A fleet worker attached to the dispatcher."""

    TYPE_NAME: ClassVar[str] = "telemetry.worker.joined"
    EVENT: ClassVar[str] = "worker-attached"

    worker: str
    pid: int
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class WorkerLeft(TelemetryEvent):
    """A fleet worker detached (``reason``: goodbye | connection-lost)."""

    TYPE_NAME: ClassVar[str] = "telemetry.worker.left"
    EVENT: ClassVar[str] = "worker-detached"

    worker: str
    reason: str
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class DispatcherUp(TelemetryEvent):
    """The fleet dispatcher bound its socket and is accepting workers."""

    TYPE_NAME: ClassVar[str] = "telemetry.dispatcher.up"
    EVENT: ClassVar[str] = "dispatcher-ready"

    host: str
    port: int
    jobs: int
    t: float = 0.0


@register_message
@dataclass(frozen=True)
class ArtifactSaved(TelemetryEvent):
    """An output file landed on disk (table CSV, manifest, telemetry log)."""

    TYPE_NAME: ClassVar[str] = "telemetry.artifact.saved"
    EVENT: ClassVar[str] = "artifact-saved"

    path: str
    kind: str
    experiment: str = ""
    t: float = 0.0


def telemetry_event_types() -> tuple[str, ...]:
    """Return the registered telemetry ``TypeName`` strings, sorted."""
    from repro.experiments.wire import message_types

    return tuple(
        name for name in message_types() if name.startswith(TELEMETRY_TYPE_PREFIX)
    )
