"""Figure 1 — ℓ0 norm of the last-FC-layer modification vs S (MNIST).

The figure plots the number of modified parameters against the number of
injected faults ``S`` for several values of ``R``.  The reproduction returns
the same series as a table (one row per R, one column per S); the benchmark
harness prints it, and the values can be plotted directly if desired.
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.reporting import Table
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    format_cell_int,
    run_experiment,
)
from repro.experiments.common import get_setting, sweep_cell_spec, usable_r_values
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "run_for_dataset", "build_campaign", "assemble"]


def _cell(dataset: str, scale: str, seed: int, s: int, r: int):
    return sweep_cell_spec(dataset=dataset, scale=scale, seed=seed, s=s, r=r, norm="l0")


def build_campaign_for_dataset(
    dataset: str, figure_name: str, scale: str = "ci", *, seed: int = 0
) -> Campaign:
    """Declare the shared Figure 1/2 sweep grid for one dataset."""
    setting = get_setting(scale)
    jobs = [
        _cell(dataset, scale, seed, s, r)
        for r in usable_r_values(setting)
        for s in setting.s_values
        if s <= r
    ]
    return Campaign(
        name=figure_name.lower().replace(" ", ""),
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"dataset": dataset, "figure_name": figure_name},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-cell metrics into the figure's l0-vs-S series."""
    setting = get_setting(campaign.scale)
    dataset = campaign.metadata["dataset"]
    figure_name = campaign.metadata["figure_name"]
    s_values = setting.s_values
    r_values = usable_r_values(setting)

    def cell_l0(s: int, r: int):
        if s > r:
            return None
        metrics = results.metrics_for(_cell(dataset, campaign.scale, campaign.seed, s, r))
        return format_cell_int(metrics["l0"])

    columns = ["R"] + [f"l0 (S={s})" for s in s_values]
    table = Table(
        title=f"{figure_name}: l0 norm of last-FC-layer modifications vs S ({dataset})",
        columns=columns,
    )
    for r in r_values:
        row = [r]
        for s in s_values:
            l0 = cell_l0(s, r)
            row.append(l0 if l0 is not None else "-")
        table.add_row(*row)
    table.add_note(
        "Expected shape: for fixed R the l0 norm increases with S; for small S the "
        "norm tends to shrink as R grows (a more constrained model needs fewer changes)."
    )
    series = {f"R={r}": [cell_l0(s, r) for s in s_values] for r in r_values}
    table.add_note(
        "\n"
        + ascii_line_chart(
            list(s_values), series, title=f"{figure_name}: l0 vs S", y_label="l0"
        )
    )
    return table


def run_for_dataset(
    dataset: str,
    figure_name: str,
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Shared implementation for Figures 1 and 2 (they differ only in dataset)."""

    def build(scale, *, seed):
        return build_campaign_for_dataset(dataset, figure_name, scale, seed=seed)

    return run_experiment(
        build,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
    )


def build_campaign(scale: str = "ci", *, seed: int = 0) -> Campaign:
    """Declare the Figure 1 (MNIST-like) campaign."""
    return build_campaign_for_dataset("mnist_like", "Figure 1", scale, seed=seed)


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce Figure 1 (MNIST-like dataset)."""
    return run_for_dataset(
        "mnist_like",
        "Figure 1",
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
    )
