"""Figure 1 — ℓ0 norm of the last-FC-layer modification vs S (MNIST).

The figure plots the number of modified parameters against the number of
injected faults ``S`` for several values of ``R``.  The reproduction returns
the same series as a table (one row per R, one column per S); the benchmark
harness prints it, and the values can be plotted directly if desired.
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.reporting import Table
from repro.analysis.sweeps import sweep_s_r_grid
from repro.experiments.common import (
    anchor_and_eval_split,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "run_for_dataset"]


def run_for_dataset(
    dataset: str,
    figure_name: str,
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
) -> Table:
    """Shared implementation for Figures 1 and 2 (they differ only in dataset)."""
    setting = get_setting(scale)
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    anchor_pool, eval_set = anchor_and_eval_split(trained)
    s_values = setting.s_values
    r_values = [r for r in setting.r_values if r <= len(anchor_pool)]

    config = attack_config_for(scale, norm="l0")
    records = sweep_s_r_grid(
        trained.model,
        anchor_pool,
        s_values=s_values,
        r_values=r_values,
        config=config,
        test_set=eval_set,
        seed=seed,
    )
    by_key = {(rec.num_targets, rec.num_images): rec for rec in records}

    columns = ["R"] + [f"l0 (S={s})" for s in s_values]
    table = Table(
        title=f"{figure_name}: l0 norm of last-FC-layer modifications vs S ({dataset})",
        columns=columns,
    )
    for r in r_values:
        row = [r]
        for s in s_values:
            rec = by_key.get((s, r))
            row.append(rec.evaluation.l0_norm if rec else "-")
        table.add_row(*row)
    table.add_note(
        "Expected shape: for fixed R the l0 norm increases with S; for small S the "
        "norm tends to shrink as R grows (a more constrained model needs fewer changes)."
    )
    series = {
        f"R={r}": [
            by_key[(s, r)].evaluation.l0_norm if (s, r) in by_key else None for s in s_values
        ]
        for r in r_values
    }
    table.add_note(
        "\n" + ascii_line_chart(list(s_values), series, title=f"{figure_name}: l0 vs S", y_label="l0")
    )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
) -> Table:
    """Reproduce Figure 1 (MNIST-like dataset)."""
    return run_for_dataset("mnist_like", "Figure 1", scale, registry=registry, seed=seed)
