"""Command-line entry point: ``python -m repro.experiments.runner`` or ``repro-experiments``.

Examples
--------
Run one experiment at CI scale and print the table::

    repro-experiments table4 --scale ci

Run everything the paper reports at paper scale, four attacks at a time,
memoizing each grid cell so an interrupted run can be resumed::

    repro-experiments all --scale paper --jobs 4 --artifact-dir artifacts/ \
        --output-dir results/

Resume an interrupted campaign (reuses the default artifact store)::

    repro-experiments all --scale paper --jobs 4 --resume

List the registered device profiles, then lower the hardware-cost grid onto
specific devices and hammer patterns::

    repro-experiments --list-profiles
    repro-experiments hardware_cost --scale ci --profile ddr4-trr --profile server-ecc
    repro-experiments hardware_cost --scale ci --profile ddr4-trrespass \
        --hammer-pattern double-sided --hammer-pattern many-sided

Monte-Carlo the stochastic profiles: more trials per cell, and a different
flip seed for an independent replication of the whole grid::

    repro-experiments hardware_cost --scale ci --profile stochastic-trrespass \
        --trials 32 --flip-seed 1

Hit the same confidence-interval width with fewer trials (antithetic pairs),
or compare cells on common random numbers (crn)::

    repro-experiments hardware_cost --scale ci --profile stochastic-ddr3 \
        --trials 16 --variance-reduction antithetic

Run the arms race — attacker profile × defense × flip budget — against a
chosen defense subset, or replay the whole grid under environmental drift
(hotter DRAM, lower landing probabilities)::

    repro-experiments defense_matrix --scale ci
    repro-experiments defense_matrix --scale ci --defense none \
        --defense checksum-fast --defense aslr --attacker ddr3-blitz
    repro-experiments defense_matrix --scale ci --env-drift 0.2

Fuse compatible grid cells into batched stacked solves (byte-identical
tables, one tensor solve per fused group)::

    repro-experiments table4 --scale ci --fuse

Run a campaign on the worker fleet: a dispatcher plus N socket-attached
worker processes (byte-identical to the serial tables)::

    repro-experiments hardware_cost --scale ci --executor fleet --workers 2

With ``--workers 0`` the dispatcher spawns nothing and waits for workers
started by hand (attach and detach them while the campaign runs)::

    python -m repro.experiments.service --host 127.0.0.1 --port <port> &

Record a structured telemetry log and publish the live event stream for the
dashboard (``python -m repro.experiments.dashboard``)::

    repro-experiments hardware_cost --scale ci --executor fleet --workers 2 \
        --telemetry-log run.jsonl --telemetry-port 0
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import CAMPAIGNS
from repro.experiments.campaign import (
    EXECUTOR_BACKENDS,
    ArtifactStore,
    ExecutorConfig,
    make_executor,
    run_campaign,
)
from repro.experiments.telemetry.bus import (
    ConsoleSink,
    JsonlSink,
    SocketSink,
    global_bus,
)
from repro.experiments.telemetry.events import ArtifactSaved
from repro.utils.clock import wall_clock
from repro.utils.logging import set_verbosity

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the Fault Sneaking Attack paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(CAMPAIGNS) + ["all"],
        help="which experiment to run ('all' runs every table and figure)",
    )
    parser.add_argument(
        "--scale",
        default="ci",
        choices=["smoke", "ci", "paper", "full"],
        help="grid size / training budget (default: ci)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed (default: 0)")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the attack grid (default: 1 = serial)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=list(EXECUTOR_BACKENDS),
        help="executor backend (default: serial for --jobs 1, process-pool otherwise)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="socket-attached worker processes for --executor fleet "
        "(default: 2; 0 = spawn none and wait for externally started "
        "workers to attach)",
    )
    parser.add_argument(
        "--fuse",
        action="store_true",
        help="fuse compatible grid cells into batched stacked solves (one "
        "tensor solve per group; bit-identical tables and manifests, fewer "
        "Python-overhead-bound solves)",
    )
    parser.add_argument(
        "--artifact-dir",
        type=Path,
        default=None,
        help="memoize each grid cell in this directory; re-runs skip completed cells",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from previously stored cells (uses the default artifact "
        "store when --artifact-dir is not given)",
    )
    parser.add_argument(
        "--format",
        default="text",
        choices=["text", "markdown", "csv"],
        help="output format for stdout (default: text)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also save each table as CSV (plus a JSON run manifest) into this directory",
    )
    parser.add_argument(
        "--profile",
        action="append",
        metavar="NAME",
        default=None,
        help="device profile for the hardware_cost grid (repeatable; default: "
        "the experiment's built-in pair)",
    )
    parser.add_argument(
        "--hammer-pattern",
        action="append",
        metavar="NAME",
        default=None,
        help="hammer pattern for the hardware_cost grid (repeatable; default: "
        "double-sided).  TRR-evasion patterns like many-sided matter on "
        "sampler-based profiles such as ddr4-trrespass",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="Monte-Carlo executions per hardware_cost cell (default: the "
        "experiment's built-in count; 0 disables the stochastic columns)",
    )
    parser.add_argument(
        "--flip-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed of the per-cell Monte-Carlo flip sampling in hardware_cost "
        "(default: 0).  Same seed = byte-identical tables, different seeds = "
        "independent replications",
    )
    parser.add_argument(
        "--variance-reduction",
        default=None,
        choices=["independent", "crn", "antithetic"],
        help="Monte-Carlo sampling scheme of the hardware_cost trials "
        "(default: independent).  crn = common random numbers across cells "
        "(keyed by --flip-seed); antithetic = paired complementary landing "
        "draws — the same CI width at fewer trials",
    )
    parser.add_argument(
        "--env-drift",
        type=float,
        default=None,
        metavar="D",
        help="environmental drift in (-1, 1) scaling every landing "
        "probability by (1 - D) in hardware_cost and defense_matrix "
        "(default: 0 = nominal temperature/voltage; positive = hotter "
        "DRAM, fewer flips land)",
    )
    parser.add_argument(
        "--attacker",
        action="append",
        metavar="NAME",
        default=None,
        help="attacker profile for the defense_matrix grid (repeatable; "
        "default: all named attackers)",
    )
    parser.add_argument(
        "--defense",
        action="append",
        metavar="NAME",
        default=None,
        help="defense configuration for the defense_matrix grid "
        "(repeatable; default: the registered suite incl. the undefended "
        "'none' baseline)",
    )
    parser.add_argument(
        "--list-profiles",
        action="store_true",
        help="list the registered device profiles and hammer patterns, then exit",
    )
    parser.add_argument(
        "--telemetry-log",
        type=Path,
        default=None,
        metavar="PATH",
        help="append every telemetry event to this JSON-lines file (replay it "
        "with python -m repro.experiments.dashboard --replay PATH)",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="N",
        help="publish the live telemetry stream on this localhost TCP port "
        "(0 = pick an ephemeral port; connect the dashboard with --connect)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log per-attack progress to stderr"
    )
    return parser


def _profiles_table():
    """Build the table printed by ``--list-profiles``."""
    from repro.analysis.reporting import Table
    from repro.hardware.device import get_pattern, get_profile, list_patterns, list_profiles

    table = Table(
        title="Registered device profiles",
        columns=[
            "name",
            "geometry",
            "ecc",
            "trr",
            "flip prob",
            "landing prob",
            "derived budget",
        ],
    )
    for name in list_profiles():
        profile = get_profile(name)
        table.add_row(
            name,
            profile.geometry.describe(),
            profile.ecc.describe() if profile.ecc is not None else "none",
            profile.trr.describe() if profile.trr is not None else "none",
            profile.flip_probability,
            profile.landing_probability,
            profile.budget().describe(),
        )
    table.add_note(
        "pass --profile NAME (repeatable) to lower the hardware_cost grid "
        "onto specific devices"
    )
    table.add_note(
        "hammer patterns (--hammer-pattern, repeatable): " + "; ".join(
            f"{name} = {get_pattern(name).description}" for name in list_patterns()
        )
    )
    table.add_note(
        "'flip prob' is the fraction of templatable cells; 'landing prob' is "
        "the per-burst probability a feasible flip lands — profiles below 1.0 "
        "(the stochastic-* variants) are Monte-Carlo sampled, and the trr "
        "column shows whether the tracker is a deterministic priority queue "
        "(trr) or a per-activation sampler (trr-sampling).  Sweep them with "
        "--trials / --flip-seed."
    )
    return table


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    set_verbosity("info" if args.verbose else "warning")

    if args.list_profiles:
        print(_profiles_table().render(args.format))
        return 0
    if args.experiment is None:
        parser.error("an experiment name is required (or use --list-profiles)")
    if args.profile:
        from repro.hardware.device import list_profiles

        unknown = [name for name in args.profile if name not in list_profiles()]
        if unknown:
            parser.error(
                f"unknown device profile(s) {unknown}; registered: "
                f"{', '.join(list_profiles())}"
            )
    if args.hammer_pattern:
        from repro.hardware.device import list_patterns

        unknown = [name for name in args.hammer_pattern if name not in list_patterns()]
        if unknown:
            parser.error(
                f"unknown hammer pattern(s) {unknown}; registered: "
                f"{', '.join(list_patterns())}"
            )
    if args.trials is not None and args.trials < 0:
        parser.error(f"--trials must be >= 0, got {args.trials}")
    if args.env_drift is not None and not -1.0 < args.env_drift < 1.0:
        parser.error(f"--env-drift must lie in (-1, 1), got {args.env_drift}")
    if args.attacker:
        from repro.experiments.defense_matrix import ATTACKER_PROFILES

        unknown = [name for name in args.attacker if name not in ATTACKER_PROFILES]
        if unknown:
            parser.error(
                f"unknown attacker(s) {unknown}; named attackers: "
                f"{', '.join(sorted(ATTACKER_PROFILES))}"
            )
    if args.defense:
        from repro.defenses import list_defenses

        unknown = [name for name in args.defense if name not in list_defenses()]
        if unknown:
            parser.error(
                f"unknown defense(s) {unknown}; registered: "
                f"{', '.join(list_defenses())}"
            )
    if args.workers is not None:
        if args.executor != "fleet":
            parser.error("--workers requires --executor fleet")
        if args.workers < 0:
            parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.telemetry_port is not None and args.telemetry_port < 0:
        parser.error(f"--telemetry-port must be >= 0, got {args.telemetry_port}")

    store = None
    if args.artifact_dir is not None or args.resume:
        # --artifact-dir names the store explicitly; --resume alone falls back
        # to the default store so a rerun finds the previous run's cells.
        store = ArtifactStore(args.artifact_dir)
    if args.output_dir is not None:
        args.output_dir.mkdir(parents=True, exist_ok=True)

    executor = args.executor
    if args.executor == "fleet":
        workers = 2 if args.workers is None else args.workers
        executor = make_executor(
            ExecutorConfig(
                backend="fleet",
                jobs=max(workers, 1),
                artifact_dir=str(store.directory) if store is not None else None,
                spawn_workers=workers > 0,
            )
        )

    # Telemetry sinks: the runner publishes to the process-wide bus that the
    # executors and dispatcher already emit on; sinks are detached on exit so
    # repeated in-process main() calls (tests) never stack.
    bus = global_bus()
    console = bus.attach(ConsoleSink(sys.stderr, verbose=args.verbose))
    jsonl = bus.attach(JsonlSink(args.telemetry_log)) if args.telemetry_log else None
    socket_sink = None
    if args.telemetry_port is not None:
        socket_sink = bus.attach(SocketSink(port=args.telemetry_port))
        print(
            f"[telemetry listening on 127.0.0.1:{socket_sink.port} — "
            f"python -m repro.experiments.dashboard --connect {socket_sink.port}]",
            file=sys.stderr,
        )

    names = sorted(CAMPAIGNS) if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            started = wall_clock()
            build_campaign, assemble = CAMPAIGNS[name]
            extra = {}
            if args.profile and name == "hardware_cost":
                extra["profiles"] = tuple(args.profile)
            if args.hammer_pattern and name == "hardware_cost":
                extra["patterns"] = tuple(args.hammer_pattern)
            if args.trials is not None and name in ("hardware_cost", "defense_matrix"):
                extra["trials"] = args.trials
            if args.flip_seed is not None and name in ("hardware_cost", "defense_matrix"):
                extra["flip_seed"] = args.flip_seed
            if args.variance_reduction is not None and name in (
                "hardware_cost",
                "defense_matrix",
            ):
                extra["variance_reduction"] = args.variance_reduction
            if args.env_drift is not None and name in ("hardware_cost", "defense_matrix"):
                extra["env_drift"] = args.env_drift
            if args.attacker and name == "defense_matrix":
                extra["attackers"] = tuple(args.attacker)
            if args.defense and name == "defense_matrix":
                extra["defenses"] = tuple(args.defense)
            campaign = build_campaign(args.scale, seed=args.seed, **extra)
            result = run_campaign(
                campaign, jobs=args.jobs, executor=executor, store=store, fuse=args.fuse
            )
            table = assemble(campaign, result)
            elapsed = wall_clock() - started
            stats = result.stats
            print(table.render(args.format))
            print(
                f"[{name} completed in {elapsed:.1f}s at scale={args.scale}: "
                f"{stats.total} jobs, {stats.cache_hits} cached, "
                f"executor={stats.executor} x{stats.jobs}]"
            )
            print()
            if args.output_dir is not None:
                path = args.output_dir / f"{name}_{args.scale}.csv"
                table.save(path, "csv")
                manifest_path = result.write_manifest(
                    args.output_dir / f"{name}_{args.scale}_manifest.json",
                    command={
                        "experiment": name,
                        "scale": args.scale,
                        "seed": args.seed,
                        "jobs": args.jobs,
                        "fuse": args.fuse,
                        "executor": stats.executor,
                        "workers": args.workers,
                        "artifact_dir": str(store.directory) if store is not None else None,
                        "profiles": list(args.profile) if args.profile else None,
                        "hammer_patterns": list(args.hammer_pattern) if args.hammer_pattern else None,
                        "trials": args.trials,
                        "flip_seed": args.flip_seed,
                        "variance_reduction": args.variance_reduction,
                        "env_drift": args.env_drift,
                        "attackers": list(args.attacker) if args.attacker else None,
                        "defenses": list(args.defense) if args.defense else None,
                    },
                )
                canonical_path = result.write_manifest(
                    args.output_dir / f"{name}_{args.scale}_manifest.canonical.json",
                    canonical=True,
                )
                for saved, kind in (
                    (path, "table-csv"),
                    (manifest_path, "manifest"),
                    (canonical_path, "manifest-canonical"),
                ):
                    bus.publish(
                        ArtifactSaved(path=str(saved), kind=kind, experiment=name)
                    )
    finally:
        bus.detach(console)
        if jsonl is not None:
            bus.detach(jsonl)
            jsonl.close()
            print(f"[saved {jsonl.path}]", file=sys.stderr)
        if socket_sink is not None:
            bus.detach(socket_sink)
            socket_sink.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
