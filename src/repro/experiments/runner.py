"""Command-line entry point: ``python -m repro.experiments.runner`` or ``repro-experiments``.

Examples
--------
Run one experiment at CI scale and print the table::

    repro-experiments table4 --scale ci

Run everything the paper reports at paper scale and save CSVs::

    repro-experiments all --scale paper --output-dir results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS
from repro.utils.logging import set_verbosity

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the Fault Sneaking Attack paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every table and figure)",
    )
    parser.add_argument(
        "--scale",
        default="ci",
        choices=["smoke", "ci", "paper", "full"],
        help="grid size / training budget (default: ci)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed (default: 0)")
    parser.add_argument(
        "--format",
        default="text",
        choices=["text", "markdown", "csv"],
        help="output format for stdout (default: text)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also save each table as CSV into this directory",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log per-attack progress to stderr"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    set_verbosity("info" if args.verbose else "warning")

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        table = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        elapsed = time.time() - started
        print(table.render(args.format))
        print(f"[{name} completed in {elapsed:.1f}s at scale={args.scale}]")
        print()
        if args.output_dir is not None:
            path = args.output_dir / f"{name}_{args.scale}.csv"
            table.save(path, "csv")
            print(f"[saved {path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
