"""Extension experiment: how detectable is each attack to a defender?

This goes beyond the paper's tables: it quantifies the stealth argument of
§1/§3 ("misclassifications are only for certain images while maintaining high
model accuracy ... therefore cannot be easily detected") with two concrete
defender models from :mod:`repro.defenses.detectors` — the same probability
code path the defense suite's checksum scrub and canary field run on:

* accuracy probing — probability that measuring accuracy on a probe set of
  100 / 1000 samples raises an alarm, and the probe size needed to reach 95 %
  detection confidence;
* parameter auditing — probability that spot-checking 1 % / 10 % of the
  attacked layer's parameters against a reference copy hits a modified one.

The fault sneaking attack is compared against the Liu et al. baselines under
the same S = 1 misclassification requirement.
"""

from __future__ import annotations

import math

from repro.defenses import detection_report
from repro.analysis.reporting import Table
from repro.attacks.parameter_view import ParameterSelector, ParameterView
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import (
    S1_BASELINE_ATTACKS,
    anchor_and_eval_split,
    get_setting,
    get_trained_model,
    run_s1_attack,
    s1_num_images,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble"]


def _cell(dataset: str, scale: str, seed: int, attack: str, num_images: int) -> JobSpec:
    return JobSpec.make(
        "detection-attack",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        attack=attack,
        num_images=int(num_images),
        plan_seed=int(seed + 17),
    )


@register_job("detection-attack")
def _detection_attack_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    attack: str,
    num_images: int,
    plan_seed: int,
) -> dict:
    """Run one S = 1 attack and score it against the probing/auditing defenders."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    model = trained.model
    anchor_pool, eval_set = anchor_and_eval_split(trained)
    plan = make_attack_plan(anchor_pool, num_targets=1, num_images=num_images, seed=plan_seed)
    layer_size = ParameterView(model, ParameterSelector(layers=("fc_logits",))).size

    result, _ = run_s1_attack(attack, model, plan, scale)
    attacked_model, l0_norm = result.modified_model(), result.l0_norm

    report = detection_report(
        model,
        attacked_model,
        eval_set,
        num_modified_parameters=l0_norm,
        attacked_parameter_count=layer_size,
    )
    return {
        "l0": l0_norm,
        "attacked_accuracy": report.attacked_accuracy,
        "probe_detection_at_100": report.probe_detection_at_100,
        "probe_detection_at_1000": report.probe_detection_at_1000,
        # NaN encodes "undetectable at any probe size" in the numeric store.
        "probes_needed_95": (
            float("nan") if report.probes_needed_95 is None else report.probes_needed_95
        ),
        "audit_detection_at_1_percent": report.audit_detection_at_1_percent,
        "audit_detection_at_10_percent": report.audit_detection_at_10_percent,
    }


def build_campaign(
    scale: str = "ci", *, seed: int = 0, dataset: str = "mnist_like"
) -> Campaign:
    """Declare one job per attack of the detectability comparison."""
    setting = get_setting(scale)
    num_images = s1_num_images(setting)
    jobs = [_cell(dataset, scale, seed, attack, num_images) for attack, _ in S1_BASELINE_ATTACKS]
    return Campaign(
        name="extension_detection",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"dataset": dataset},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-attack metrics into the detectability table."""
    setting = get_setting(campaign.scale)
    dataset = campaign.metadata["dataset"]
    num_images = s1_num_images(setting)

    table = Table(
        title=f"Extension: detectability of the S=1 attacks ({dataset})",
        columns=[
            "attack",
            "modified params",
            "attacked accuracy",
            "probe detection @100",
            "probe detection @1000",
            "probes needed (95%)",
            "audit detection @1%",
            "audit detection @10%",
        ],
    )
    for attack, label in S1_BASELINE_ATTACKS:
        metrics = results.metrics_for(
            _cell(dataset, campaign.scale, campaign.seed, attack, num_images)
        )
        probes_needed = metrics["probes_needed_95"]
        table.add_row(
            label,
            format_cell_int(metrics["l0"]),
            metrics["attacked_accuracy"],
            metrics["probe_detection_at_100"],
            metrics["probe_detection_at_1000"],
            "undetectable" if math.isnan(probes_needed) else format_cell_int(probes_needed),
            metrics["audit_detection_at_1_percent"],
            metrics["audit_detection_at_10_percent"],
        )

    table.add_note(
        "Accuracy probing models a defender that re-measures accuracy on n held-out "
        "samples and alarms on a drop of more than 2 points; parameter auditing models "
        "a defender that spot-checks a fraction of the attacked layer against a "
        "reference copy."
    )
    table.add_note(
        "Expected shape: the fault sneaking attack needs orders of magnitude more "
        "probes to detect than SBA (stealth), while SBA/GDA win on parameter audits "
        "(they modify very few parameters)."
    )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Run the detectability extension experiment and return its table."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        dataset=dataset,
    )
