"""Extension experiment: how detectable is each attack to a defender?

This goes beyond the paper's tables: it quantifies the stealth argument of
§1/§3 ("misclassifications are only for certain images while maintaining high
model accuracy ... therefore cannot be easily detected") with two concrete
defender models from :mod:`repro.analysis.detection`:

* accuracy probing — probability that measuring accuracy on a probe set of
  100 / 1000 samples raises an alarm, and the probe size needed to reach 95 %
  detection confidence;
* parameter auditing — probability that spot-checking 1 % / 10 % of the
  attacked layer's parameters against a reference copy hits a modified one.

The fault sneaking attack is compared against the Liu et al. baselines under
the same S = 1 misclassification requirement.
"""

from __future__ import annotations

from repro.analysis.detection import detection_report
from repro.analysis.reporting import Table
from repro.attacks.baselines import (
    GradientDescentAttack,
    GradientDescentAttackConfig,
    SingleBiasAttack,
    SingleBiasAttackConfig,
)
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.parameter_view import ParameterSelector, ParameterView
from repro.attacks.targets import make_attack_plan
from repro.experiments.common import (
    anchor_and_eval_split,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run"]


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
) -> Table:
    """Run the detectability extension experiment and return its table."""
    setting = get_setting(scale)
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    model = trained.model
    anchor_pool, eval_set = anchor_and_eval_split(trained)
    num_images = min(setting.baseline_r, len(anchor_pool))
    plan = make_attack_plan(anchor_pool, num_targets=1, num_images=num_images, seed=seed + 17)
    layer_size = ParameterView(model, ParameterSelector(layers=("fc_logits",))).size

    table = Table(
        title=f"Extension: detectability of the S=1 attacks ({dataset})",
        columns=[
            "attack",
            "modified params",
            "attacked accuracy",
            "probe detection @100",
            "probe detection @1000",
            "probes needed (95%)",
            "audit detection @1%",
            "audit detection @10%",
        ],
    )

    def add_row(name, attacked_model, l0_norm):
        report = detection_report(
            model,
            attacked_model,
            eval_set,
            num_modified_parameters=l0_norm,
            attacked_parameter_count=layer_size,
        )
        table.add_row(
            name,
            l0_norm,
            report.attacked_accuracy,
            report.probe_detection_at_100,
            report.probe_detection_at_1000,
            report.probes_needed_95 if report.probes_needed_95 is not None else "undetectable",
            report.audit_detection_at_1_percent,
            report.audit_detection_at_10_percent,
        )

    fs_result = FaultSneakingAttack(model, attack_config_for(scale, norm="l0")).attack(plan)
    add_row("fault sneaking (l0)", fs_result.modified_model(), fs_result.l0_norm)

    gda_result = GradientDescentAttack(
        model, GradientDescentAttackConfig(iterations=setting.attack_iterations)
    ).attack(plan)
    add_row("GDA (Liu et al.)", gda_result.modified_model(), gda_result.l0_norm)

    sba_result = SingleBiasAttack(model, SingleBiasAttackConfig()).attack(
        plan.target_images[0], int(plan.target_labels[0])
    )
    add_row("SBA (Liu et al.)", sba_result.modified_model(), sba_result.l0_norm)

    table.add_note(
        "Accuracy probing models a defender that re-measures accuracy on n held-out "
        "samples and alarms on a drop of more than 2 points; parameter auditing models "
        "a defender that spot-checks a fraction of the attacked layer against a "
        "reference copy."
    )
    table.add_note(
        "Expected shape: the fault sneaking attack needs orders of magnitude more "
        "probes to detect than SBA (stealth), while SBA/GDA win on parameter audits "
        "(they modify very few parameters)."
    )
    return table
