"""Experiment drivers reproducing every table and figure of the paper.

Each module declares its grid as a *campaign* of independent attack jobs
(``build_campaign``), which the engine in :mod:`repro.experiments.campaign`
executes serially or across worker processes, memoizing each cell in a
content-addressed artifact store; ``assemble`` turns the per-cell metrics
back into the paper's table.  The ``run(scale=..., registry=..., seed=...)``
convenience wrapper on every module builds, executes and assembles in one
call and returns a :class:`repro.analysis.reporting.Table`:

========================  =====================================================
Module                    Paper artefact
========================  =====================================================
``table1``                Table 1 — ℓ0 norm per attacked FC layer (MNIST)
``table2``                Table 2 — weights-only vs biases-only, last FC layer
``table3``                Table 3 — ℓ0-based vs ℓ2-based attack norms
``table4``                Table 4 — test accuracy after modification
``figure1``               Figure 1 — ℓ0 norm vs S for several R (MNIST)
``figure2``               Figure 2 — ℓ0 norm vs S for several R (CIFAR)
``figure3``               Figure 3 — attack success rate vs S (both datasets)
``baseline_comparison``   §5.4 — accuracy loss vs the Liu et al. baselines
``ablations``             extra ablations (ρ sweep, warm start, δ-step, hardware cost)
``extension_detection``   extension — detectability under probing / auditing defenders
``hardware_cost``         extension — bit-true lowering: storage format × flip budget × S
``defense_matrix``        extension — arms race: attacker profile × defense × flip budget
========================  =====================================================

The ``scale`` argument selects the grid size: ``"ci"`` (minutes, used by the
benchmark suite), ``"paper"`` (the paper's S/R grids on the compact CNN) and
``"full"`` (the paper's grids on the paper's CNN architecture).
"""

from repro.experiments.campaign import (
    ArtifactStore,
    Campaign,
    CampaignResult,
    ExecutorConfig,
    JobSpec,
    make_executor,
    run_campaign,
)
from repro.experiments.common import (
    ExperimentSetting,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.experiments import (
    ablations,
    baseline_comparison,
    defense_matrix,
    extension_detection,
    figure1,
    figure2,
    figure3,
    hardware_cost,
    table1,
    table2,
    table3,
    table4,
)

# The campaign service (typed wire protocol, dispatcher, worker fleet).  The
# import also registers the built-in "service-selftest" job kind, which
# worker *subprocesses* need to find through _ensure_registrations().
from repro.experiments import service  # noqa: E402

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "baseline_comparison": baseline_comparison.run,
    "ablations": ablations.run,
    "extension_detection": extension_detection.run,
    "hardware_cost": hardware_cost.run,
    "defense_matrix": defense_matrix.run,
}

# Grid builders and assemblers, used by the CLI runner so it can execute the
# campaign itself (shared artifact store across experiments, JSON manifests).
CAMPAIGNS = {
    "table1": (table1.build_campaign, table1.assemble),
    "table2": (table2.build_campaign, table2.assemble),
    "table3": (table3.build_campaign, table3.assemble),
    "table4": (table4.build_campaign, table4.assemble),
    "figure1": (figure1.build_campaign, figure1.assemble),
    "figure2": (figure2.build_campaign, figure2.assemble),
    "figure3": (figure3.build_campaign, figure3.assemble),
    "baseline_comparison": (baseline_comparison.build_campaign, baseline_comparison.assemble),
    "ablations": (ablations.build_campaign, ablations.assemble),
    "extension_detection": (extension_detection.build_campaign, extension_detection.assemble),
    "hardware_cost": (hardware_cost.build_campaign, hardware_cost.assemble),
    "defense_matrix": (defense_matrix.build_campaign, defense_matrix.assemble),
}

__all__ = [
    "EXPERIMENTS",
    "CAMPAIGNS",
    "ArtifactStore",
    "Campaign",
    "CampaignResult",
    "JobSpec",
    "run_campaign",
    "ExperimentSetting",
    "get_setting",
    "get_trained_model",
    "attack_config_for",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "baseline_comparison",
    "ablations",
    "extension_detection",
    "hardware_cost",
    "defense_matrix",
]
