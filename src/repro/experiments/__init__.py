"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes a ``run(scale=..., registry=..., seed=...)`` function that
returns a :class:`repro.analysis.reporting.Table` with the same rows/series
the paper reports:

========================  =====================================================
Module                    Paper artefact
========================  =====================================================
``table1``                Table 1 — ℓ0 norm per attacked FC layer (MNIST)
``table2``                Table 2 — weights-only vs biases-only, last FC layer
``table3``                Table 3 — ℓ0-based vs ℓ2-based attack norms
``table4``                Table 4 — test accuracy after modification
``figure1``               Figure 1 — ℓ0 norm vs S for several R (MNIST)
``figure2``               Figure 2 — ℓ0 norm vs S for several R (CIFAR)
``figure3``               Figure 3 — attack success rate vs S (both datasets)
``baseline_comparison``   §5.4 — accuracy loss vs the Liu et al. baselines
``ablations``             extra ablations (ρ sweep, warm start, δ-step, hardware cost)
``extension_detection``   extension — detectability under probing / auditing defenders
========================  =====================================================

The ``scale`` argument selects the grid size: ``"ci"`` (minutes, used by the
benchmark suite), ``"paper"`` (the paper's S/R grids on the compact CNN) and
``"full"`` (the paper's grids on the paper's CNN architecture).
"""

from repro.experiments.common import (
    ExperimentSetting,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.experiments import (
    ablations,
    baseline_comparison,
    extension_detection,
    figure1,
    figure2,
    figure3,
    table1,
    table2,
    table3,
    table4,
)

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "baseline_comparison": baseline_comparison.run,
    "ablations": ablations.run,
    "extension_detection": extension_detection.run,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentSetting",
    "get_setting",
    "get_trained_model",
    "attack_config_for",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "baseline_comparison",
    "ablations",
    "extension_detection",
]
