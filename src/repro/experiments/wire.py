"""Canonical frame layer shared by the campaign service and the telemetry bus.

One discipline, two protocols: the worker fleet's wire messages
(:mod:`repro.experiments.service.protocol`) and the telemetry event stream
(:mod:`repro.experiments.telemetry.events`) are both families of small frozen
dataclasses, one type per event, each carrying an explicit ``TypeName`` and
``Version`` field on the wire (the one-small-frozen-type-per-message protocol
layer of gridworks-scada's ``gwsproto.named_types`` is the model).  This
module holds the machinery both families share:

* the :class:`Message` base class — canonical JSON encoding (sorted keys,
  minimal separators), strict field validation on decode, explicit version
  gating;
* the decode registry (:func:`register_message` / :func:`decode_message`)
  with typed rejections (:class:`UnknownMessageType`,
  :class:`UnsupportedVersion`, :class:`MalformedMessage`);
* newline-delimited frame helpers (:func:`encode_frame` /
  :func:`decode_frame`) with a shared size cap;
* the NaN↔``null`` metric-dictionary convention (:func:`encode_metrics` /
  :func:`decode_metrics`).

The discipline buys three things a raw pickle stream cannot:

* **auditability** — every frame is a line of canonical JSON, readable in a
  packet capture or a run log;
* **compatibility** — a consumer can reject a producer speaking a future
  protocol revision with a typed error instead of a deserialisation crash,
  and old payloads remain parseable for as long as their version is listed;
* **safety** — decoding never executes code (unlike pickle), so a campaign
  service can listen on a socket without trusting its peers' bytecode.

Both families are registered in one decode table and snapshotted together by
the RPL004 schema gate (``tests/golden/protocol_schema.json``): a silent
shape change in *either* protocol fails ``repro-lint``.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, fields
from typing import Any, ClassVar

__all__ = [
    "ProtocolError",
    "UnknownMessageType",
    "UnsupportedVersion",
    "MalformedMessage",
    "Message",
    "register_message",
    "message_types",
    "registered_messages",
    "decode_message",
    "encode_frame",
    "decode_frame",
    "encode_metrics",
    "decode_metrics",
    "MAX_FRAME_BYTES",
]

# Upper bound on one frame; a JobClaim carries a full parameter dictionary
# and a telemetry job-done frame a full metric dictionary, but campaign
# cells are scalar grids, so a megabyte is generous.  Stream readers must be
# created with at least this limit.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """Base class for every wire-protocol violation."""


class UnknownMessageType(ProtocolError):
    """The payload's ``TypeName`` is not in the message registry."""


class UnsupportedVersion(ProtocolError):
    """The payload's ``Version`` is not supported for its message type."""


class MalformedMessage(ProtocolError):
    """The payload is not valid JSON or violates its type's field contract."""


# -- registry ------------------------------------------------------------------------

_MESSAGE_TYPES: dict[str, type["Message"]] = {}


def register_message(cls: type["Message"]) -> type["Message"]:
    """Class decorator adding a message type to the decode registry."""
    name = cls.TYPE_NAME
    existing = _MESSAGE_TYPES.get(name)
    if existing is not None and existing is not cls:
        raise ProtocolError(f"message type {name!r} is already registered")
    _MESSAGE_TYPES[name] = cls
    return cls


def message_types() -> tuple[str, ...]:
    """Return the registered ``TypeName`` strings, sorted."""
    return tuple(sorted(_MESSAGE_TYPES))


def registered_messages() -> dict[str, type["Message"]]:
    """Return a copy of the decode registry (``TypeName`` -> message class).

    Public so the static-analysis checker (``repro.analysis.lint``) can
    verify protocol conformance — every subclass frozen, versioned and
    registered — and snapshot the wire schema without reaching into
    privates.
    """
    return dict(_MESSAGE_TYPES)


# -- base message --------------------------------------------------------------------


@dataclass(frozen=True)
class Message:
    """Base class of all wire messages: frozen payload + TypeName/Version.

    Subclasses declare scalar (or JSON-native dict) fields only; the wire
    form is the field dictionary plus ``TypeName`` and ``Version``.  A
    subclass bumps ``VERSION`` when its field contract changes and lists the
    revisions it still accepts in ``SUPPORTED_VERSIONS``.

    An intermediate base class that only adds behaviour (no ``TYPE_NAME``,
    never on the wire) declares ``ABSTRACT_BASE = True`` so the RPL004
    conformance walk skips it.
    """

    TYPE_NAME: ClassVar[str] = ""
    VERSION: ClassVar[str] = "100"
    # Versions this build can still decode; by default only the current one.
    SUPPORTED_VERSIONS: ClassVar[tuple[str, ...]] = ("100",)
    # Marker for behaviour-only intermediate bases (see class docstring).
    ABSTRACT_BASE: ClassVar[bool] = False

    def as_dict(self) -> dict[str, Any]:
        """Wire-form dictionary (TypeName/Version plus every field)."""
        payload: dict[str, Any] = {
            "TypeName": self.TYPE_NAME,
            "Version": self.VERSION,
        }
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, minimal separators)."""
        try:
            return json.dumps(
                self.as_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
            )
        except (TypeError, ValueError) as exc:
            raise MalformedMessage(
                f"{type(self).__name__} holds a non-JSON-native field value: {exc}"
            ) from exc

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Message":
        """Decode one payload dictionary, enforcing the full field contract."""
        if not isinstance(payload, dict):
            raise MalformedMessage(
                f"{cls.TYPE_NAME}: payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        type_name = payload.get("TypeName")
        if type_name != cls.TYPE_NAME:
            raise MalformedMessage(
                f"{cls.__name__} cannot decode TypeName {type_name!r} "
                f"(expects {cls.TYPE_NAME!r})"
            )
        version = payload.get("Version")
        if version not in cls.SUPPORTED_VERSIONS:
            tense = "future" if str(version) > cls.VERSION else "unsupported"
            raise UnsupportedVersion(
                f"{cls.TYPE_NAME}: {tense} Version {version!r}; this build "
                f"supports {list(cls.SUPPORTED_VERSIONS)}"
            )
        declared = {spec.name: spec for spec in fields(cls)}
        given = {key for key in payload if key not in ("TypeName", "Version")}
        missing = sorted(set(declared) - given)
        if missing:
            raise MalformedMessage(f"{cls.TYPE_NAME}: missing field(s) {missing}")
        unknown = sorted(given - set(declared))
        if unknown:
            raise MalformedMessage(f"{cls.TYPE_NAME}: unknown field(s) {unknown}")
        kwargs: dict[str, Any] = {}
        for name, spec in declared.items():
            value = payload[name]
            expected = _FIELD_CHECKS.get(str(spec.type))
            if expected is not None and not expected(value):
                raise MalformedMessage(
                    f"{cls.TYPE_NAME}: field {name!r} must be {spec.type}, got "
                    f"{type(value).__name__}"
                )
            kwargs[name] = value
        return cls(**kwargs)


# Per-annotation wire checks.  Fields are deliberately limited to these
# shapes; anything richer belongs in the params/metrics dictionaries.
_FIELD_CHECKS: dict[str, Callable[[Any], bool]] = {
    "str": lambda v: isinstance(v, str),
    # bool is an int subclass but is not an acceptable wire integer.
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "dict": lambda v: isinstance(v, dict) and all(isinstance(k, str) for k in v),
}


def decode_message(text: str | bytes) -> Message:
    """Decode one JSON payload into its registered message type."""
    try:
        payload = json.loads(text)
    except (ValueError, UnicodeDecodeError) as exc:
        raise MalformedMessage(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise MalformedMessage(
            f"frame must decode to a JSON object, got {type(payload).__name__}"
        )
    type_name = payload.get("TypeName")
    if not isinstance(type_name, str):
        raise MalformedMessage("frame is missing a string 'TypeName' field")
    cls = _MESSAGE_TYPES.get(type_name)
    if cls is None:
        raise UnknownMessageType(
            f"unknown message type {type_name!r}; registered: {list(message_types())}"
        )
    return cls.from_dict(payload)


def encode_frame(message: Message) -> bytes:
    """Encode a message as one newline-terminated UTF-8 frame."""
    frame = message.to_json().encode("utf-8") + b"\n"
    if len(frame) > MAX_FRAME_BYTES:
        raise MalformedMessage(
            f"{message.TYPE_NAME}: frame of {len(frame)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return frame


def decode_frame(line: bytes) -> Message:
    """Decode one newline-terminated frame read from a stream."""
    if len(line) > MAX_FRAME_BYTES:
        raise MalformedMessage(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return decode_message(line)


# -- metric payload helpers ----------------------------------------------------------
# Job metrics are {name: float} with NaN sentinels ("undetectable" cells).
# Strict JSON has no NaN token, so the wire form uses null, mirroring the
# ArtifactStore's on-disk convention.


def encode_metrics(metrics: dict[str, float]) -> dict[str, float | None]:
    """Encode a metric dictionary for the wire (NaN becomes ``null``)."""
    return {
        name: None if value != value else float(value)
        for name, value in metrics.items()
    }


def decode_metrics(payload: dict[str, float | None]) -> dict[str, float]:
    """Decode a wire metric dictionary (``null`` becomes NaN)."""
    return {
        name: float("nan") if value is None else float(value)
        for name, value in payload.items()
    }
