"""Campaign orchestration: declarative grids of independent attack jobs.

Every table and figure of the paper is a grid of *independent* attack
instances (one ADMM solve per cell), yet the seed implementation ran each
grid as a hand-rolled serial loop inside its experiment driver.  This module
turns the grids into first-class data so they can be executed, parallelised,
memoized and resumed uniformly:

* :class:`JobSpec` — one grid cell, described entirely by a registered job
  *kind* plus JSON-serialisable parameters.  The spec's content hash is both
  its identity inside a campaign and its key in the artifact store, so two
  experiments that share a cell (Table 4 and Figure 1 run the same (S, R)
  sweeps) compute it once.
* :func:`register_job` — experiment modules register the function that
  executes one cell of their grid; workers look the function up by kind, so
  a spec is cheap to ship to another process.
* :class:`ArtifactStore` — content-hash-keyed on-disk memoization of job
  results built on :class:`repro.utils.cache.DiskCache`; re-runs and resumed
  campaigns skip completed cells.
* Executors — four backends behind one :class:`ExecutorConfig` +
  :func:`make_executor` factory and one ``run(campaign, *, registry,
  on_event)`` contract: serial in-process execution, a
  ``multiprocessing.Pool``, a ``concurrent.futures.ProcessPoolExecutor``,
  and the socket-attached worker fleet of
  :mod:`repro.experiments.service`.  The old positional constructors
  survive as deprecation shims.
* :func:`run_campaign` — dedupe, artifact lookup, victim-model warm-up,
  dispatch, incremental artifact writes and a structured manifest
  (:meth:`CampaignResult.write_manifest`).

Determinism: each job derives its own seed from its spec via
:func:`repro.utils.rng.derive_seed` before executing, and every random
decision of a cell (plan seed, model seed) is part of its spec, so serial
and parallel runs produce identical tables cell for cell.

The invariants this rests on are machine-checked by ``repro-lint``
(``python -m repro.analysis``): no unseeded randomness outside
``repro.utils.rng`` (RPL001), no wall-clock reads feeding content-hashed
results or canonical manifests (RPL002 — elapsed timings here use
``time.perf_counter`` and are excluded from :meth:`CampaignResult.
canonical_manifest`), canonical encoders always sorted (RPL003), and
``register_job`` functions never mutating module state (RPL006).
"""

from __future__ import annotations

import json
import math
import multiprocessing
import random
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

import numpy as np
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.experiments.telemetry.bus import global_bus
from repro.experiments.telemetry.events import (
    JobCached,
    JobFinished,
    JobStarted,
    RunFinished,
    RunStarted,
    TelemetryEvent,
)
from repro.experiments.wire import encode_metrics
from repro.utils.cache import DiskCache, default_cache_dir, stable_hash
from repro.utils.errors import ConfigurationError
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed, seed_everything
from repro.zoo.registry import ModelRegistry

__all__ = [
    "JobSpec",
    "JobResult",
    "register_job",
    "job_kinds",
    "execute_job",
    "ArtifactStore",
    "Campaign",
    "CampaignStats",
    "CampaignResult",
    "EventCallback",
    "ExecutorConfig",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "FuturesExecutor",
    "make_executor",
    "run_campaign",
    "run_experiment",
    "EXECUTOR_BACKENDS",
]

_LOGGER = get_logger("experiments.campaign")

EXECUTOR_BACKENDS = ("serial", "multiprocessing", "process-pool", "fleet")

# Structured-progress callback: receives one typed telemetry event per
# campaign state change (job started/done/cached, worker attach/detach,
# dispatcher-ready).  Events are mapping-compatible (``event["event"]`` is the
# short name), so dictionary-era callbacks keep working.  Every event also
# reaches the process-wide telemetry bus (:func:`repro.experiments.telemetry.
# bus.global_bus`) regardless of whether a callback is given.
EventCallback = Callable[[TelemetryEvent], None]


# -- job specs and results -----------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One independent cell of an experiment grid.

    A spec is pure data: a registered job ``kind`` plus a sorted tuple of
    JSON-serialisable ``(name, value)`` parameters.  Everything a cell needs
    — dataset, scale, S, R, plan seed — lives in the parameters, so the spec
    can be hashed for memoization and pickled to a worker process.
    """

    kind: str
    params: tuple[tuple[str, Any], ...]

    @staticmethod
    def make(kind: str, **params: Any) -> "JobSpec":
        """Build a spec with canonically ordered parameters."""
        return JobSpec(kind=kind, params=tuple(sorted(params.items())))

    def param_dict(self) -> dict[str, Any]:
        """Return the parameters as a plain dictionary."""
        return dict(self.params)

    @property
    def key(self) -> str:
        """Content-hash identity of this cell (artifact-store key)."""
        return stable_hash({"kind": self.kind, "params": self.param_dict()})

    def as_dict(self) -> dict[str, Any]:
        """Manifest form of the spec."""
        return {"kind": self.kind, "key": self.key, "params": self.param_dict()}


@dataclass(frozen=True)
class JobResult:
    """Scalar metrics produced by one executed (or memoized) job."""

    key: str
    kind: str
    metrics: dict[str, float]
    elapsed: float = 0.0
    cached: bool = False


# -- job-kind registry ---------------------------------------------------------------

_JOB_KINDS: dict[str, Callable[..., dict]] = {}


def register_job(kind: str) -> Callable[[Callable[..., dict]], Callable[..., dict]]:
    """Class decorator registering the executor function for a job kind.

    The decorated function receives the spec parameters as keyword arguments
    plus a ``registry`` keyword (the model registry to train/load victim
    models through; ``None`` means the worker default) and must return a flat
    ``{metric name: number}`` dictionary.
    """

    def decorator(fn: Callable[..., dict]) -> Callable[..., dict]:
        existing = _JOB_KINDS.get(kind)
        if existing is not None and existing is not fn:
            raise ConfigurationError(f"job kind {kind!r} is already registered")
        _JOB_KINDS[kind] = fn
        return fn

    return decorator


def job_kinds() -> tuple[str, ...]:
    """Return the names of all registered job kinds."""
    _ensure_registrations()
    return tuple(sorted(_JOB_KINDS))


def _ensure_registrations() -> None:
    # Importing the experiments package imports every driver module, each of
    # which registers its job kinds at import time.  Workers started with a
    # "spawn" context arrive with a fresh interpreter, so the lookup must not
    # rely on the parent having imported anything.
    import repro.experiments  # noqa: F401  (import triggers registration)


def execute_job(spec: JobSpec, *, registry: ModelRegistry | None = None) -> JobResult:
    """Execute one job in the current process and return its metrics.

    The job's own seed is derived from its spec through
    :func:`repro.utils.rng.derive_seed`, so any code path that touches global
    random state behaves identically under every executor.
    """
    _ensure_registrations()
    try:
        fn = _JOB_KINDS[spec.kind]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown job kind {spec.kind!r}; registered kinds: {sorted(_JOB_KINDS)}"
        ) from exc
    if registry is None:
        registry = _WORKER_REGISTRY
    # Seed the global generators per job so any stray global-RNG use behaves
    # identically under every executor — but restore the caller's state
    # afterwards so serial in-process execution stays side-effect free.
    stdlib_state = random.getstate()
    numpy_state = np.random.get_state()
    try:
        seed_everything(derive_seed(spec.kind, spec.params))
        started = time.perf_counter()
        metrics = fn(registry=registry, **spec.param_dict())
        elapsed = time.perf_counter() - started
    finally:
        random.setstate(stdlib_state)
        np.random.set_state(numpy_state)
    clean = {name: float(value) for name, value in metrics.items()}
    return JobResult(key=spec.key, kind=spec.kind, metrics=clean, elapsed=elapsed)


# -- artifact store ------------------------------------------------------------------


class ArtifactStore:
    """Content-hash-keyed on-disk memoization of job results.

    Entries are JSON payloads inside a :class:`~repro.utils.cache.DiskCache`
    directory, keyed by the job spec's content hash: two campaigns (or two
    runs of the same campaign) that contain an identical cell share one
    artifact.  Loading verifies the stored kind against the requesting spec,
    so a (astronomically unlikely) hash collision degrades to a cache miss
    rather than a wrong table cell.

    The directory is sharded two levels deep by hash prefix
    (``ab/cd/abcd....json``), so a store holding millions of memoized cells
    keeps O(1) per-entry lookups instead of degrading with one giant flat
    directory; entries written by pre-sharding versions are still found at
    their flat paths.
    """

    def __init__(self, directory: str | Path | None = None, *, enabled: bool = True):
        base = Path(directory) if directory is not None else default_artifact_dir()
        self.cache = DiskCache(base, enabled=enabled, shard_levels=2)

    @property
    def directory(self) -> Path:
        """Root directory of the store."""
        return self.cache.directory

    @property
    def enabled(self) -> bool:
        """Whether lookups and writes are active."""
        return self.cache.enabled

    def load(self, spec: JobSpec) -> JobResult | None:
        """Return the memoized result for ``spec`` or ``None`` on a miss."""
        payload = self.cache.load_json(spec.key)
        if payload is None or payload.get("kind") != spec.kind:
            return None
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            return None
        return JobResult(
            key=spec.key,
            kind=spec.kind,
            # Metric values are floats by construction, so a stored null can
            # only be the NaN sentinel (see store()).
            metrics={
                name: float("nan") if value is None else float(value)
                for name, value in metrics.items()
            },
            elapsed=float(payload.get("elapsed", 0.0)),
            cached=True,
        )

    def store(self, result: JobResult) -> None:
        """Persist one job result (atomic write, strict JSON).

        NaN metrics (e.g. "undetectable" sentinels) are stored as ``null``
        so the artifacts stay readable by strict JSON tooling.
        """
        metrics = {
            name: None if math.isnan(value) else value
            for name, value in result.metrics.items()
        }
        self.cache.store_json(
            result.key,
            {"kind": result.kind, "metrics": metrics, "elapsed": result.elapsed},
        )


def default_artifact_dir() -> Path:
    """Default artifact-store location (used by the runner's ``--resume``)."""
    return default_cache_dir() / "campaigns"


# -- executors -----------------------------------------------------------------------

# Registry used by jobs running inside a pool worker.  It is configured once
# per worker by :func:`_init_worker` so that every worker shares the parent's
# on-disk model cache (warmed up before dispatch) instead of retraining.
_WORKER_REGISTRY: ModelRegistry | None = None


def _worker_registry_config(registry: ModelRegistry | None) -> tuple[str | None, bool]:
    """Return ``(cache_dir, cache_disabled)`` for worker-side registries.

    A caller registry with its disk cache *disabled* must stay disabled in
    the workers too (forced retraining is a deliberate isolation choice, and
    falling back to the process-default cache directory would leak state in
    and out of it).
    """
    if registry is None:
        return None, False
    if not registry.disk_cache.enabled:
        return None, True
    return str(registry.disk_cache.directory), False


def _init_worker(cache_dir: str | None, cache_disabled: bool = False) -> None:
    global _WORKER_REGISTRY
    _ensure_registrations()
    if cache_disabled:
        _WORKER_REGISTRY = ModelRegistry(DiskCache(enabled=False))
    elif cache_dir is not None:
        _WORKER_REGISTRY = ModelRegistry(DiskCache(cache_dir))


def _execute_spec(spec: JobSpec) -> JobResult:
    # Top-level so it pickles for pool.imap / executor.submit.
    return execute_job(spec, registry=_WORKER_REGISTRY)


@dataclass(frozen=True)
class ExecutorConfig:
    """One configuration object for every executor backend.

    The three in-process backends read ``backend``/``jobs``/``cache_dir``
    only; the remaining fields configure the socket-attached worker fleet
    (:mod:`repro.experiments.service`).  Construct one of these and hand it
    to :func:`make_executor` — the per-class positional constructors are
    deprecated.
    """

    backend: str = "serial"
    jobs: int = 1
    cache_dir: str | None = None
    # -- fleet-only settings ---------------------------------------------------------
    artifact_dir: str | None = None  # workers write results through this store
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    lease_seconds: float = 30.0
    heartbeat_seconds: float = 1.0
    max_attempts: int = 3
    spawn_workers: bool = True  # False = wait for externally attached workers

    def __post_init__(self) -> None:
        if self.backend not in EXECUTOR_BACKENDS:
            raise ConfigurationError(
                f"unknown executor backend {self.backend!r}; valid backends: "
                f"{', '.join(EXECUTOR_BACKENDS)}"
            )
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")


class Executor:
    """Base class of all campaign executors: one config, one run contract.

    Subclasses set ``name``/``parallel`` and implement
    ``run(campaign, *, registry=None, on_event=None)``, yielding one
    :class:`JobResult` per pending job (any order).  ``campaign`` may be a
    :class:`Campaign` (its deduplicated jobs run) or an iterable of
    :class:`JobSpec`; ``on_event`` is an optional callable receiving
    structured progress dictionaries (the seed of ROADMAP item 5's event
    bus).

    Constructing a subclass with the historical positional signature
    ``(jobs, cache_dir)`` still works but emits a
    :class:`DeprecationWarning`; pass an :class:`ExecutorConfig` instead.
    """

    name: str = "abstract"
    parallel: bool = False

    def __init__(
        self, config: ExecutorConfig | int | None = None, cache_dir: str | None = None
    ):
        if isinstance(config, ExecutorConfig):
            if cache_dir is not None:
                raise ConfigurationError(
                    "pass cache_dir inside ExecutorConfig, not alongside it"
                )
            if config.backend != self.name:
                config = replace(config, backend=self.name)
        elif config is None and cache_dir is None:
            config = ExecutorConfig(backend=self.name)
        else:
            warnings.warn(
                f"{type(self).__name__}(jobs, cache_dir) is deprecated; build an "
                f"ExecutorConfig(backend={self.name!r}, jobs=..., cache_dir=...) "
                "and pass it to make_executor() or the constructor",
                DeprecationWarning,
                stacklevel=2,
            )
            jobs = 1 if config is None else config
            if not isinstance(jobs, int) or isinstance(jobs, bool):
                raise ConfigurationError(
                    f"jobs must be an integer, got {type(jobs).__name__}"
                )
            config = ExecutorConfig(backend=self.name, jobs=jobs, cache_dir=cache_dir)
        self.config = config

    @property
    def jobs(self) -> int:
        """Degree of parallelism this executor reports in campaign stats."""
        return self.config.jobs

    @property
    def cache_dir(self) -> str | None:
        """Model-cache override handed to worker processes."""
        return self.config.cache_dir

    @staticmethod
    def _pending_specs(campaign: "Campaign | Iterable[JobSpec]") -> list[JobSpec]:
        """Normalise the ``run`` argument to a job list."""
        if isinstance(campaign, Campaign):
            return campaign.unique_jobs()
        return list(campaign)

    @staticmethod
    def _emit(
        on_event: EventCallback | None, event: TelemetryEvent
    ) -> TelemetryEvent:
        """Publish to the global telemetry bus, then the legacy callback."""
        event = global_bus().publish(event)
        if on_event is not None:
            on_event(event)
        return event

    def run(
        self,
        campaign: "Campaign | Iterable[JobSpec]",
        *,
        registry: ModelRegistry | None = None,
        on_event: EventCallback | None = None,
    ) -> Iterator[JobResult]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Run every job in the current process, in submission order."""

    name = "serial"
    parallel = False

    @property
    def jobs(self) -> int:
        return 1

    def run(
        self,
        campaign: "Campaign | Iterable[JobSpec]",
        *,
        registry: ModelRegistry | None = None,
        on_event: EventCallback | None = None,
    ) -> Iterator[JobResult]:
        """Yield one result per job as it completes."""
        for spec in self._pending_specs(campaign):
            self._emit(on_event, JobStarted(key=spec.key, kind=spec.kind))
            result = execute_job(spec, registry=registry)
            self._emit(
                on_event,
                JobFinished(
                    key=result.key,
                    kind=result.kind,
                    metrics=encode_metrics(result.metrics),
                    duration_s=result.elapsed,
                ),
            )
            yield result


class MultiprocessingExecutor(Executor):
    """Fan jobs out to a ``multiprocessing.Pool`` of worker processes."""

    name = "multiprocessing"
    parallel = True

    def run(
        self,
        campaign: "Campaign | Iterable[JobSpec]",
        *,
        registry: ModelRegistry | None = None,
        on_event: EventCallback | None = None,
    ) -> Iterator[JobResult]:
        """Yield results as workers complete them (unordered)."""
        specs = self._pending_specs(campaign)
        with multiprocessing.Pool(
            processes=min(self.jobs, max(len(specs), 1)),
            initializer=_init_worker,
            initargs=self._initargs(registry),
        ) as pool:
            # Submission is the whole batch at once; job-started marks entry
            # into the pool's queue, not the moment a worker picks it up.
            for spec in specs:
                self._emit(on_event, JobStarted(key=spec.key, kind=spec.kind))
            # Unordered: results are keyed by spec hash, so arrival order is
            # irrelevant and the parent can persist each artifact immediately.
            for result in pool.imap_unordered(_execute_spec, specs):
                self._emit(
                    on_event,
                    JobFinished(
                        key=result.key,
                        kind=result.kind,
                        metrics=encode_metrics(result.metrics),
                        duration_s=result.elapsed,
                    ),
                )
                yield result

    def _initargs(self, registry: ModelRegistry | None) -> tuple[str | None, bool]:
        cache_dir, cache_disabled = _worker_registry_config(registry)
        return (self.cache_dir or cache_dir, cache_disabled)


class FuturesExecutor(Executor):
    """Fan jobs out through ``concurrent.futures.ProcessPoolExecutor``."""

    name = "process-pool"
    parallel = True

    def run(
        self,
        campaign: "Campaign | Iterable[JobSpec]",
        *,
        registry: ModelRegistry | None = None,
        on_event: EventCallback | None = None,
    ) -> Iterator[JobResult]:
        """Yield results as workers complete them (unordered)."""
        specs = self._pending_specs(campaign)
        cache_dir, cache_disabled = _worker_registry_config(registry)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, max(len(specs), 1)),
            initializer=_init_worker,
            initargs=(self.cache_dir or cache_dir, cache_disabled),
        ) as executor:
            pending = set()
            for spec in specs:
                pending.add(executor.submit(_execute_spec, spec))
                self._emit(on_event, JobStarted(key=spec.key, kind=spec.kind))
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    result = future.result()
                    self._emit(
                        on_event,
                        JobFinished(
                            key=result.key,
                            kind=result.kind,
                            metrics=encode_metrics(result.metrics),
                            duration_s=result.elapsed,
                        ),
                    )
                    yield result


def _executor_class(backend: str) -> type[Executor]:
    if backend == "fleet":
        # Imported lazily: the service package depends on this module.
        from repro.experiments.service.fleet import FleetExecutor

        return FleetExecutor
    return {
        "serial": SerialExecutor,
        "multiprocessing": MultiprocessingExecutor,
        "process-pool": FuturesExecutor,
    }[backend]


def make_executor(
    config: ExecutorConfig | int | None = None,
    backend: str | None = None,
    cache_dir: str | None = None,
    *,
    jobs: int | None = None,
) -> Executor:
    """Build an executor from an :class:`ExecutorConfig`.

    The historical ``make_executor(jobs, backend, cache_dir)`` call shape is
    still accepted: it is normalised into a config, with ``backend=None``
    selecting serial execution for ``jobs <= 1`` and the
    ``concurrent.futures`` process pool otherwise.  Unknown backends raise
    :class:`~repro.utils.errors.ConfigurationError` (a :class:`ValueError`)
    naming the valid choices.
    """
    if isinstance(config, ExecutorConfig):
        if backend is not None or cache_dir is not None or jobs is not None:
            raise ConfigurationError(
                "make_executor(config) takes no extra arguments; put backend/"
                "jobs/cache_dir inside the ExecutorConfig"
            )
    else:
        legacy_jobs = jobs if jobs is not None else config
        if legacy_jobs is None:
            legacy_jobs = 1
        if not isinstance(legacy_jobs, int) or isinstance(legacy_jobs, bool):
            raise ConfigurationError(
                f"jobs must be an integer, got {type(legacy_jobs).__name__}"
            )
        if backend is None:
            backend = "serial" if legacy_jobs <= 1 else "process-pool"
        config = ExecutorConfig(backend=backend, jobs=legacy_jobs, cache_dir=cache_dir)
    return _executor_class(config.backend)(config)


# -- campaigns -----------------------------------------------------------------------


@dataclass(frozen=True)
class Campaign:
    """A named grid of independent jobs plus the context to assemble tables."""

    name: str
    scale: str
    seed: int
    jobs: tuple[JobSpec, ...]
    metadata: dict[str, Any] = field(default_factory=dict)

    def unique_jobs(self) -> list[JobSpec]:
        """Jobs deduplicated by content hash, first occurrence wins."""
        seen: set[str] = set()
        unique: list[JobSpec] = []
        for spec in self.jobs:
            if spec.key not in seen:
                seen.add(spec.key)
                unique.append(spec)
        return unique

    def model_requirements(self) -> list[tuple[str, str, int]]:
        """Distinct ``(dataset, scale, seed)`` victim models the jobs need."""
        seen: set[tuple[str, str, int]] = set()
        ordered: list[tuple[str, str, int]] = []
        for spec in self.jobs:
            params = spec.param_dict()
            dataset = params.get("dataset")
            if dataset is None:
                continue
            requirement = (
                str(dataset),
                str(params.get("scale", self.scale)),
                int(params.get("seed", self.seed)),
            )
            if requirement not in seen:
                seen.add(requirement)
                ordered.append(requirement)
        return ordered


@dataclass(frozen=True)
class CampaignStats:
    """Execution summary of one campaign run."""

    total: int
    executed: int
    cache_hits: int
    elapsed_seconds: float
    executor: str
    jobs: int


@dataclass(frozen=True)
class CampaignResult:
    """Results of a campaign run, keyed by job content hash."""

    campaign: Campaign
    results: dict[str, JobResult]
    stats: CampaignStats

    def result_for(self, spec: JobSpec) -> JobResult:
        """Return the result of one cell (raises if the cell never ran)."""
        try:
            return self.results[spec.key]
        except KeyError as exc:
            raise KeyError(
                f"campaign {self.campaign.name!r} has no result for job "
                f"{spec.kind!r} with params {spec.param_dict()}"
            ) from exc

    def metrics_for(self, spec: JobSpec) -> dict[str, float]:
        """Return the metric dictionary of one cell."""
        return self.result_for(spec).metrics

    def manifest(self) -> dict[str, Any]:
        """Structured JSON-serialisable record of the run."""
        by_key = {spec.key: spec for spec in self.campaign.jobs}
        jobs_detail = []
        for key, spec in by_key.items():
            result = self.results.get(key)
            detail = spec.as_dict()
            detail["status"] = "missing" if result is None else "completed"
            if result is not None:
                detail["cached"] = result.cached
                detail["elapsed_seconds"] = round(result.elapsed, 6)
            jobs_detail.append(detail)
        return {
            "campaign": self.campaign.name,
            "scale": self.campaign.scale,
            "seed": self.campaign.seed,
            "stats": {
                "total_jobs": self.stats.total,
                "executed": self.stats.executed,
                "cache_hits": self.stats.cache_hits,
                "elapsed_seconds": round(self.stats.elapsed_seconds, 6),
                "executor": self.stats.executor,
                "jobs": self.stats.jobs,
            },
            "jobs": jobs_detail,
        }

    def canonical_manifest(self) -> dict[str, Any]:
        """Executor-independent view of the run: identities and numbers only.

        Two runs of the same campaign — serial, process pool, or a worker
        fleet with members dying mid-run — must produce byte-identical
        canonical manifests: jobs are sorted by content hash and volatile
        fields (timings, cache hits, executor identity) are excluded, while
        every metric value is included (NaN as ``null``, the store's
        convention).  This is the artifact the service's acceptance checks
        diff.
        """
        jobs_detail = []
        by_key = {spec.key: spec for spec in self.campaign.jobs}
        for key in sorted(by_key):
            spec = by_key[key]
            result = self.results.get(key)
            detail = spec.as_dict()
            detail["status"] = "missing" if result is None else "completed"
            if result is not None:
                detail["metrics"] = {
                    name: None if math.isnan(value) else value
                    for name, value in sorted(result.metrics.items())
                }
            jobs_detail.append(detail)
        return {
            "campaign": self.campaign.name,
            "scale": self.campaign.scale,
            "seed": self.campaign.seed,
            "total_jobs": self.stats.total,
            "jobs": jobs_detail,
        }

    def write_manifest(
        self, path: str | Path, *, command: dict | None = None, canonical: bool = False
    ) -> Path:
        """Write the run manifest as indented, sorted, strict JSON.

        The one manifest-serialisation code path shared by the CLI runner and
        the campaign service.  ``command`` attaches the invoking command line
        (ignored for canonical manifests, which must stay run-independent);
        ``canonical=True`` writes :meth:`canonical_manifest` instead of the
        full :meth:`manifest`.
        """
        payload = self.canonical_manifest() if canonical else self.manifest()
        if command is not None and not canonical:
            payload["command"] = dict(command)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
            encoding="utf-8",
        )
        return path


def _warm_model_caches(
    campaign: Campaign, pending: Iterable[JobSpec], registry: ModelRegistry | None
) -> None:
    """Train every victim model the pending jobs need before fanning out.

    Training happens at most once per (dataset, scale, seed) in the parent
    and lands in the registry's disk cache; workers then load weights instead
    of each paying the training cost (or worse, racing to train).
    """
    from repro.experiments.common import get_trained_model

    needed = Campaign(
        name=campaign.name,
        scale=campaign.scale,
        seed=campaign.seed,
        jobs=tuple(pending),
    ).model_requirements()
    for dataset, scale, seed in needed:
        get_trained_model(dataset, scale, registry=registry, seed=seed)


def run_campaign(
    campaign: Campaign,
    *,
    registry: ModelRegistry | None = None,
    jobs: int = 1,
    executor: Executor | ExecutorConfig | str | None = None,
    store: ArtifactStore | None = None,
    on_event: EventCallback | None = None,
    fuse: bool = False,
) -> CampaignResult:
    """Execute a campaign and return its results and statistics.

    Parameters
    ----------
    campaign:
        The grid to execute.
    registry:
        Model registry for victim models.  Serial execution uses it directly;
        parallel executors give each worker a registry sharing its disk cache.
    jobs, executor:
        Parallelism degree and backend.  ``executor`` may be an
        :class:`ExecutorConfig`, a backend name (see
        :data:`EXECUTOR_BACKENDS`), an executor instance, or ``None`` to
        choose from ``jobs``.
    store:
        Optional artifact store.  Completed cells found in the store are not
        re-executed; freshly executed cells are persisted one by one, so an
        interrupted campaign resumes where it stopped.
    on_event:
        Optional callback receiving structured progress dictionaries
        (cache hits, job completions, fleet worker attach/detach).  Fleet
        events arrive from a background thread.
    fuse:
        Group compatible pending cells (see :mod:`repro.experiments.fusion`)
        into batched in-parent jobs — one stacked tensor solve per group —
        before handing the remainder to the executor.  Purely an
        execution-plan rewrite: per-cell artifact keys, metrics, manifests
        and telemetry events are identical to an unfused run.
    """
    started = time.perf_counter()
    store = store if store is not None else ArtifactStore(enabled=False)
    if isinstance(executor, ExecutorConfig):
        executor = make_executor(executor)
    elif executor is None or isinstance(executor, str):
        executor = make_executor(jobs=jobs, backend=executor)

    unique = campaign.unique_jobs()
    Executor._emit(
        on_event,
        RunStarted(
            campaign=campaign.name,
            scale=campaign.scale,
            seed=campaign.seed,
            total_jobs=len(unique),
            executor=executor.name,
            jobs=executor.jobs,
        ),
    )
    results: dict[str, JobResult] = {}
    pending: list[JobSpec] = []
    for spec in unique:
        cached = store.load(spec)
        if cached is not None:
            results[spec.key] = cached
            Executor._emit(on_event, JobCached(key=spec.key, kind=spec.kind))
        else:
            pending.append(spec)
    cache_hits = len(results)
    _LOGGER.info(
        "campaign %s: %d jobs (%d cached, %d to run) via %s",
        campaign.name,
        len(unique),
        cache_hits,
        len(pending),
        executor.name,
    )

    fused_groups: list[list[JobSpec]] = []
    if fuse and pending:
        # Imported lazily: fusion depends on this module.
        from repro.experiments.fusion import plan_fusion, run_fused_group

        fused_groups, pending = plan_fusion(pending)
        if fused_groups:
            _LOGGER.info(
                "campaign %s: fused %d jobs into %d batched groups (%d stay scalar)",
                campaign.name,
                sum(len(group) for group in fused_groups),
                len(fused_groups),
                len(pending),
            )

    # Warm-up only helps when workers can actually read what the parent
    # trains; a deliberately disabled disk cache means each worker retrains.
    warmup_reaches_workers = registry is None or registry.disk_cache.enabled
    if pending and executor.parallel and warmup_reaches_workers:
        _warm_model_caches(campaign, pending, registry)

    for group in fused_groups:
        # Fused groups run in-parent: the per-group batched solve is the
        # parallelism.  Events mirror the scalar path cell for cell — the
        # per-job (event, key, kind) multiset of a fused run equals the
        # serial run's.
        for spec in group:
            Executor._emit(on_event, JobStarted(key=spec.key, kind=spec.kind))
        for result in run_fused_group(group, registry=registry):
            store.store(result)
            results[result.key] = result
            Executor._emit(
                on_event,
                JobFinished(
                    key=result.key,
                    kind=result.kind,
                    metrics=encode_metrics(result.metrics),
                    duration_s=result.elapsed,
                ),
            )
    for result in executor.run(pending, registry=registry, on_event=on_event):
        store.store(result)
        results[result.key] = result

    stats = CampaignStats(
        total=len(unique),
        executed=len(pending) + sum(len(group) for group in fused_groups),
        cache_hits=cache_hits,
        elapsed_seconds=time.perf_counter() - started,
        executor=executor.name,
        jobs=executor.jobs,
    )
    Executor._emit(
        on_event,
        RunFinished(
            campaign=campaign.name,
            total_jobs=stats.total,
            executed=stats.executed,
            cache_hits=stats.cache_hits,
            executor=stats.executor,
            jobs=stats.jobs,
            elapsed_s=stats.elapsed_seconds,
        ),
    )
    return CampaignResult(campaign=campaign, results=results, stats=stats)


def run_experiment(
    build_campaign: Callable[..., Campaign],
    assemble: Callable[[Campaign, CampaignResult], Any],
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    jobs: int = 1,
    executor: Executor | ExecutorConfig | str | None = None,
    artifact_dir: str | Path | None = None,
    fuse: bool = False,
    **kwargs: Any,
) -> Any:
    """Build, run and assemble one experiment campaign (driver entry point).

    This is the shared implementation behind every driver's ``run``: the
    module's grid builder declares the cells, the engine executes them, and
    the module's ``assemble`` turns the per-cell metrics into the paper's
    table.
    """
    campaign = build_campaign(scale, seed=seed, **kwargs)
    store = ArtifactStore(artifact_dir) if artifact_dir is not None else None
    result = run_campaign(
        campaign, registry=registry, jobs=jobs, executor=executor, store=store, fuse=fuse
    )
    return assemble(campaign, result)


def format_cell_int(value: float) -> int:
    """Convert a stored metric back to the integer the table reports."""
    if math.isnan(value):
        raise ValueError("cannot render NaN as an integer table cell")
    return int(round(value))
