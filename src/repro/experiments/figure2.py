"""Figure 2 — ℓ0 norm of the last-FC-layer modification vs S (CIFAR).

Identical protocol to Figure 1, run on the CIFAR-like dataset/model.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.experiments.figure1 import run_for_dataset
from repro.zoo.registry import ModelRegistry

__all__ = ["run"]


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
) -> Table:
    """Reproduce Figure 2 (CIFAR-like dataset)."""
    return run_for_dataset("cifar_like", "Figure 2", scale, registry=registry, seed=seed)
