"""Figure 2 — ℓ0 norm of the last-FC-layer modification vs S (CIFAR).

Identical protocol to Figure 1, run on the CIFAR-like dataset/model.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.experiments.campaign import Campaign
from repro.experiments.figure1 import (
    assemble,
    build_campaign_for_dataset,
    run_for_dataset,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble"]


def build_campaign(scale: str = "ci", *, seed: int = 0) -> Campaign:
    """Declare the Figure 2 (CIFAR-like) campaign."""
    return build_campaign_for_dataset("cifar_like", "Figure 2", scale, seed=seed)


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce Figure 2 (CIFAR-like dataset)."""
    return run_for_dataset(
        "cifar_like",
        "Figure 2",
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
    )
