"""Figure 3 — attack success rate of the S target images vs S.

The paper's fault-tolerance finding (§5.5): the success rate stays ≈100 %
while ``S`` is below the model's tolerance (≈10 for their networks when only
the last FC layer is modified) and drops beyond it; the absolute number of
successfully injected faults saturates near that tolerance.
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.reporting import Table
from repro.analysis.tolerance import fault_tolerance_curve
from repro.experiments.common import (
    anchor_and_eval_split,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run"]


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
) -> Table:
    """Reproduce Figure 3 and return it as a :class:`Table`."""
    setting = get_setting(scale)
    s_values = list(setting.tolerance_s_values)
    num_images = max(setting.tolerance_r, max(s_values))

    table = Table(
        title="Figure 3: fault sneaking attack success rate vs S",
        columns=["dataset", "S", "success rate", "successful faults", "keep rate", "l0"],
    )
    config = attack_config_for(scale, norm="l0")
    success_series: dict[str, list[float]] = {}
    for dataset in datasets:
        trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
        anchor_pool, _ = anchor_and_eval_split(trained)
        curve = fault_tolerance_curve(
            trained.model,
            anchor_pool,
            s_values=s_values,
            num_images=min(num_images, len(anchor_pool)),
            config=config,
            seed=seed,
        )
        success_series[dataset] = list(curve.success_rates)
        for record in curve.as_records():
            table.add_row(
                dataset,
                record["S"],
                record["success_rate"],
                record["successful_faults"],
                record["keep_rate"],
                record["l0"],
            )
        table.add_note(
            f"{dataset}: observed fault tolerance (max successful faults) = {curve.tolerance}"
        )
    table.add_note(
        "Paper reference: success rate stays ~100% for S < 10 and drops beyond; the "
        "number of successful faults saturates around 10."
    )
    table.add_note(
        "\n"
        + ascii_line_chart(
            s_values,
            success_series,
            title="Figure 3: success rate vs S",
            y_label="rate",
        )
    )
    return table
