"""Figure 3 — attack success rate of the S target images vs S.

The paper's fault-tolerance finding (§5.5): the success rate stays ≈100 %
while ``S`` is below the model's tolerance (≈10 for their networks when only
the last FC layer is modified) and drops beyond it; the absolute number of
successfully injected faults saturates near that tolerance.
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import (
    anchor_and_eval_split,
    anchor_pool_size,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble"]


def _num_images(setting) -> int:
    requested = max(setting.tolerance_r, max(setting.tolerance_s_values))
    return min(requested, anchor_pool_size(setting))


def _cell(dataset: str, scale: str, seed: int, s: int, num_images: int) -> JobSpec:
    return JobSpec.make(
        "tolerance-cell",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        s=int(s),
        num_images=int(num_images),
        plan_seed=int(seed),
    )


@register_job("tolerance-cell")
def _tolerance_cell_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    num_images: int,
    plan_seed: int,
) -> dict:
    """One point of the fault-tolerance curve: attack S targets at fixed R."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    anchor_pool, _ = anchor_and_eval_split(trained)
    config = attack_config_for(scale, norm="l0")
    plan = make_attack_plan(anchor_pool, num_targets=s, num_images=num_images, seed=plan_seed)
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    return {
        "success_rate": result.success_rate,
        "successful_faults": result.num_successful_faults,
        "keep_rate": result.keep_rate,
        "l0": result.l0_norm,
    }


def build_campaign(
    scale: str = "ci",
    *,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
) -> Campaign:
    """Declare one job per (dataset, S) point of the tolerance curve."""
    setting = get_setting(scale)
    num_images = _num_images(setting)
    jobs = [
        _cell(dataset, scale, seed, s, num_images)
        for dataset in datasets
        for s in setting.tolerance_s_values
    ]
    return Campaign(
        name="figure3",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"datasets": tuple(datasets)},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-point metrics into the Figure 3 table and chart."""
    setting = get_setting(campaign.scale)
    s_values = list(setting.tolerance_s_values)
    num_images = _num_images(setting)

    table = Table(
        title="Figure 3: fault sneaking attack success rate vs S",
        columns=["dataset", "S", "success rate", "successful faults", "keep rate", "l0"],
    )
    success_series: dict[str, list[float]] = {}
    for dataset in campaign.metadata["datasets"]:
        rates = []
        faults = []
        for s in s_values:
            metrics = results.metrics_for(
                _cell(dataset, campaign.scale, campaign.seed, s, num_images)
            )
            rates.append(metrics["success_rate"])
            faults.append(format_cell_int(metrics["successful_faults"]))
            table.add_row(
                dataset,
                s,
                metrics["success_rate"],
                format_cell_int(metrics["successful_faults"]),
                metrics["keep_rate"],
                format_cell_int(metrics["l0"]),
            )
        success_series[dataset] = rates
        tolerance = max(faults) if faults else 0
        table.add_note(
            f"{dataset}: observed fault tolerance (max successful faults) = {tolerance}"
        )
    table.add_note(
        "Paper reference: success rate stays ~100% for S < 10 and drops beyond; the "
        "number of successful faults saturates around 10."
    )
    table.add_note(
        "\n"
        + ascii_line_chart(
            s_values,
            success_series,
            title="Figure 3: success rate vs S",
            y_label="rate",
        )
    )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce Figure 3 and return it as a :class:`Table`."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        datasets=datasets,
    )
