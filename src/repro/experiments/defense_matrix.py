"""Arms race: attacker profile × defense config × flip budget.

Every cell solves the attack once, lowers it onto the attacker's device
exactly like ``hardware_cost`` (same solve cache, same trial-seed
derivation — the ``none`` row is bit-identical to the corresponding
undefended ``hardware_cost`` cell), then judges each Monte-Carlo execution
under one configured defense (:func:`repro.defenses.evaluate_defense`):

* **evasion rate** — how often the attack's modelled ``hammer_seconds``
  elapse before the defense first flags it, with a 95 % binomial CI;
* **time-to-detection** — mean defender-clock time of the first flag over
  the detected trials;
* **surviving success** — the attack success left after the defender's
  response (restore-from-reference on timely detection, payload scramble
  under randomized placement).

Attackers are named (profile, hammer pattern) pairs — a permissive consumer
DIMM hammered double-sided, a SECDED server DIMM, and the stochastic
TRRespass device driven many-sided — so the matrix reads as *who* is
attacking, not just which DRAM generation.  Defenses come from the
:mod:`repro.defenses` registry.  Each cell is an independent campaign job:
the grid parallelises under ``--jobs N`` / every executor backend and stays
byte-identical to the serial run.
"""

from __future__ import annotations

from repro.analysis.reporting import (
    DEFENSE_COLUMNS,
    STOCHASTIC_COST_COLUMNS,
    Table,
    defense_cells,
    stochastic_cost_cells,
)
from repro.attacks.lowering import VARIANCE_REDUCTION_SCHEMES
from repro.defenses import evaluate_defense, get_defense
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    register_job,
    run_experiment,
)
from repro.experiments.common import get_setting
from repro.experiments.hardware_cost import _num_images, lowered_cell
from repro.hardware.device import get_pattern, get_profile
from repro.utils.errors import ConfigurationError
from repro.utils.rng import derive_seed
from repro.zoo.registry import ModelRegistry

__all__ = [
    "run",
    "build_campaign",
    "assemble",
    "ATTACKER_PROFILES",
    "DEFAULT_ATTACKERS",
    "DEFAULT_DEFENSES",
    "DEFAULT_BUDGETS",
    "DEFAULT_TRIALS",
]

# Named attacker profiles: a (device profile, hammer pattern) pair per
# threat actor.  The names are the campaign axis; the pairs pin the exact
# lowering parameters so a matrix cell reproduces the matching
# `hardware_cost` cell bit for bit.
ATTACKER_PROFILES: dict[str, tuple[str, str]] = {
    # Fast and loud: no ECC, full landing probability, double-sided burst.
    "ddr3-blitz": ("ddr3-noecc", "double-sided"),
    # Patient and careful: SECDED server DIMM, alarms on uncorrectables.
    "server-stealth": ("server-ecc", "double-sided"),
    # Realistic modern attacker: sampling TRR tracker evaded many-sided,
    # sub-1.0 landing probabilities — the slowest, noisiest injection.
    "trrespass-stochastic": ("stochastic-trrespass", "many-sided"),
}

DEFAULT_ATTACKERS = tuple(ATTACKER_PROFILES)

# Defense configurations swept by default (registry names; see
# repro.defenses).  "none" anchors the matrix to the undefended rates.
DEFAULT_DEFENSES = (
    "none",
    "checksum",
    "checksum-fast",
    "ecc-scrub",
    "canary",
    "aslr",
)

# Flip-budget levels swept by default: the profile-derived budget and its
# expected-success variant.  "unlimited" is available via --budget but adds
# little to the race (the defenses act on landed flips either way).
DEFAULT_BUDGETS = ("derived", "expected")

# Monte-Carlo executions judged per cell.  Matches hardware_cost's default
# so the `none` rows line up with the default hardware_cost tables.
DEFAULT_TRIALS = 3

# The matrix runs on one storage format; the storage axis belongs to
# hardware_cost.  float32 is the deployment format the paper evaluates.
_STORAGE = "float32"


def _cell(
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    r: int,
    attacker: str,
    defense: str,
    budget: str,
    trials: int,
    flip_seed: int,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
) -> JobSpec:
    # Same key discipline as hardware_cost: non-default scheme/drift only.
    extra: dict = {}
    if variance_reduction != "independent":
        extra["variance_reduction"] = variance_reduction
    if env_drift != 0.0:
        extra["env_drift"] = float(env_drift)
    return JobSpec.make(
        "defense-matrix-cell",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        s=int(s),
        r=int(r),
        attacker=attacker,
        defense=defense,
        budget=budget,
        plan_seed=int(seed),
        trials=int(trials),
        flip_seed=int(flip_seed),
        **extra,
    )


@register_job("defense-matrix-cell")
def _defense_matrix_cell_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    r: int,
    attacker: str,
    defense: str,
    budget: str,
    plan_seed: int,
    trials: int = DEFAULT_TRIALS,
    flip_seed: int = 0,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
) -> dict:
    """Lower one attack and judge its trials under one defense."""
    profile, pattern = ATTACKER_PROFILES[attacker]
    cell = lowered_cell(
        registry=registry,
        dataset=dataset,
        scale=scale,
        seed=seed,
        s=s,
        r=r,
        storage=_STORAGE,
        profile=profile,
        budget=budget,
        pattern=pattern,
        plan_seed=plan_seed,
        trials=trials,
        flip_seed=flip_seed,
        variance_reduction=variance_reduction,
        env_drift=env_drift,
    )
    stats = evaluate_defense(
        defense,
        solved=cell.solved,
        report=cell.report,
        profile=profile,
        storage=_STORAGE,
        # One defense-private stream root per cell, independent of (but as
        # reproducible as) the attacker's landing streams.
        defense_seed=derive_seed(
            "defense-matrix",
            int(flip_seed),
            dataset,
            scale,
            int(seed),
            int(s),
            _STORAGE,
            profile,
            budget,
            pattern,
            defense,
        ),
        env_drift=env_drift,
    )
    return {**cell.metrics(), **stats.as_dict()}


def build_campaign(
    scale: str = "ci",
    *,
    seed: int = 0,
    dataset: str = "mnist_like",
    attackers: tuple[str, ...] = DEFAULT_ATTACKERS,
    defenses: tuple[str, ...] = DEFAULT_DEFENSES,
    budgets: tuple[str, ...] = DEFAULT_BUDGETS,
    trials: int = DEFAULT_TRIALS,
    flip_seed: int = 0,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
) -> Campaign:
    """Declare one job per (attacker, defense, budget, S) matrix point."""
    for name in attackers:
        if name not in ATTACKER_PROFILES:
            known = ", ".join(sorted(ATTACKER_PROFILES))
            raise ConfigurationError(
                f"unknown attacker {name!r}; known attackers: {known}"
            )
        profile, pattern = ATTACKER_PROFILES[name]
        get_profile(profile)
        get_pattern(pattern)
    for name in defenses:
        get_defense(name)  # fail fast on unknown defense names
    if trials <= 0:
        raise ConfigurationError(
            f"the defense race is judged per trial; trials must be > 0, got {trials}"
        )
    if variance_reduction not in VARIANCE_REDUCTION_SCHEMES:
        raise ConfigurationError(
            f"variance_reduction must be one of {VARIANCE_REDUCTION_SCHEMES}, "
            f"got {variance_reduction!r}"
        )
    if not -1.0 < env_drift < 1.0:
        raise ConfigurationError(f"env_drift must lie in (-1, 1), got {env_drift}")
    setting = get_setting(scale)
    r = _num_images(setting)
    jobs = [
        _cell(
            dataset, scale, seed, s, r, attacker, defense, budget,
            trials, flip_seed, variance_reduction, env_drift,
        )
        for attacker in attackers
        for defense in defenses
        for budget in budgets
        for s in setting.hardware_s_values
        if s <= r
    ]
    return Campaign(
        name="defense_matrix",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={
            "dataset": dataset,
            "attackers": tuple(attackers),
            "defenses": tuple(defenses),
            "budgets": tuple(budgets),
            "trials": int(trials),
            "flip_seed": int(flip_seed),
            "variance_reduction": variance_reduction,
            "env_drift": float(env_drift),
        },
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-cell metrics into the arms-race matrix."""
    setting = get_setting(campaign.scale)
    dataset = campaign.metadata["dataset"]
    attackers = campaign.metadata["attackers"]
    defenses = campaign.metadata["defenses"]
    budgets = campaign.metadata["budgets"]
    trials = campaign.metadata["trials"]
    flip_seed = campaign.metadata.get("flip_seed", 0)
    variance_reduction = campaign.metadata.get("variance_reduction", "independent")
    env_drift = campaign.metadata.get("env_drift", 0.0)
    r = _num_images(setting)
    table = Table(
        title=(
            f"Arms race: attacker profile × defense × flip budget "
            f"({dataset}, {_STORAGE}, R={r})"
        ),
        columns=[
            "attacker",
            "profile",
            "pattern",
            "defense",
            "budget",
            "S",
            "bit-true success",
            *STOCHASTIC_COST_COLUMNS,
            *DEFENSE_COLUMNS,
        ],
    )
    for attacker in attackers:
        profile, pattern = ATTACKER_PROFILES[attacker]
        for defense in defenses:
            for budget in budgets:
                for s in setting.hardware_s_values:
                    if s > r:
                        continue
                    metrics = results.metrics_for(
                        _cell(
                            dataset,
                            campaign.scale,
                            campaign.seed,
                            s,
                            r,
                            attacker,
                            defense,
                            budget,
                            trials,
                            flip_seed,
                            variance_reduction,
                            env_drift,
                        )
                    )
                    table.add_row(
                        attacker,
                        profile,
                        pattern,
                        defense,
                        budget,
                        s,
                        metrics["bit_true_success"],
                        *stochastic_cost_cells(metrics),
                        *defense_cells(metrics),
                    )
    table.add_note(
        "evasion rate = fraction of trials where the attack's hammer_seconds "
        "elapse before the defense first flags it (± 95% binomial CI); "
        "'ttd s' is the mean defender-clock time of the first flag over "
        "detected trials (NaN when nothing was detected); 'surviving "
        "success' is the attack success left after the defender's response "
        "(restore on timely detection, payload scramble under aslr)."
    )
    table.add_note(
        "the 'none' rows reproduce the matching hardware_cost cells bit for "
        "bit: same solve cache, same per-cell trial-seed derivation."
    )
    table.add_note(
        "attackers: " + "; ".join(
            f"{name} = {ATTACKER_PROFILES[name][0]} via "
            f"{ATTACKER_PROFILES[name][1]}"
            for name in attackers
        )
    )
    table.add_note(
        "defenses: " + "; ".join(
            f"{name} = {get_defense(name).describe()}" for name in defenses
        )
    )
    if env_drift:
        table.add_note(
            f"env drift {env_drift:+g}: landing probabilities scaled by "
            f"{1.0 - env_drift:g} for attacker flips and canary cells alike."
        )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    attackers: tuple[str, ...] = DEFAULT_ATTACKERS,
    defenses: tuple[str, ...] = DEFAULT_DEFENSES,
    budgets: tuple[str, ...] = DEFAULT_BUDGETS,
    trials: int = DEFAULT_TRIALS,
    flip_seed: int = 0,
    variance_reduction: str = "independent",
    env_drift: float = 0.0,
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Run the attacker × defense × budget matrix and return its table."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        dataset=dataset,
        attackers=attackers,
        defenses=defenses,
        budgets=budgets,
        trials=trials,
        flip_seed=flip_seed,
        variance_reduction=variance_reduction,
        env_drift=env_drift,
    )
