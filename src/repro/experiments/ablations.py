"""Ablation studies beyond the paper's tables.

These quantify the design choices called out in DESIGN.md:

* ``rho_sweep`` — how the ADMM penalty ρ trades off the ℓ0 norm against the
  attack's success (the hard-threshold level is ``sqrt(2/ρ)``).
* ``warm_start`` — ADMM started from zero vs from the dense warm start.
* ``delta_step`` — adaptive trust-region α vs the fixed α of eq. (22).
* ``hardware_cost`` — bit flips and injector effort implied by the ℓ0 vs ℓ2
  modification, under float32 and float16 parameter storage.

Each ablation row is one independent campaign job, so ``run`` executes every
row of every ablation through one (optionally parallel) campaign.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.hardware import (
    FaultInjectionCampaign,
    LaserBeamInjector,
    RowHammerInjector,
)
from repro.nn.quantization import QuantizationSpec
from repro.zoo.registry import ModelRegistry

__all__ = [
    "run",
    "build_campaign",
    "assemble",
    "rho_sweep",
    "warm_start_ablation",
    "delta_step_ablation",
    "hardware_cost",
]

# Ablation (S, R) working point: small enough to run per-row in seconds,
# large enough that sparsification and stealth both matter.
_S, _R = 4, 100

_DEFAULT_RHOS = (100.0, 500.0, 2000.0, 8000.0)
_DELTA_ALPHAS = (
    ("adaptive (trust region)", None),
    ("fixed alpha=1", 1.0),
    ("fixed alpha=10", 10.0),
)
_STORAGES = ("float32", "float16")


def _num_images(setting) -> int:
    return min(_R, setting.n_test)


def _attack_plan(trained, scale: str, seed: int):
    setting = get_setting(scale)
    return make_attack_plan(
        trained.data.test, num_targets=_S, num_images=_num_images(setting), seed=seed + 23
    )


# -- rho sweep -----------------------------------------------------------------------


def _rho_cell(dataset: str, scale: str, seed: int, rho: float) -> JobSpec:
    return JobSpec.make(
        "ablation-rho", dataset=dataset, scale=scale, seed=int(seed), rho=float(rho)
    )


@register_job("ablation-rho")
def _rho_job(
    *, registry: ModelRegistry | None = None, dataset: str, scale: str, seed: int, rho: float
) -> dict:
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _attack_plan(trained, scale, seed)
    config = attack_config_for(scale, norm="l0", rho=float(rho))
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    return {
        "l0": result.l0_norm,
        "l2": result.l2_norm,
        "success_rate": result.success_rate,
        "keep_rate": result.keep_rate,
    }


def _rho_jobs(scale: str, seed: int, dataset: str, rhos) -> list[JobSpec]:
    return [_rho_cell(dataset, scale, seed, rho) for rho in rhos]


def _rho_table(scale: str, seed: int, dataset: str, rhos, results: CampaignResult) -> Table:
    setting = get_setting(scale)
    table = Table(
        title=f"Ablation: ADMM penalty rho sweep (l0 attack, S={_S}, R={_num_images(setting)})",
        columns=["rho", "hard threshold", "l0", "l2", "success rate", "keep rate"],
    )
    for rho in rhos:
        metrics = results.metrics_for(_rho_cell(dataset, scale, seed, rho))
        table.add_row(
            float(rho),
            (2.0 / float(rho)) ** 0.5,
            format_cell_int(metrics["l0"]),
            metrics["l2"],
            metrics["success_rate"],
            metrics["keep_rate"],
        )
    table.add_note("Smaller rho = higher threshold = sparser modification, until success degrades.")
    return table


# -- warm start ----------------------------------------------------------------------


def _warm_cell(dataset: str, scale: str, seed: int, warm: bool) -> JobSpec:
    return JobSpec.make(
        "ablation-warm-start", dataset=dataset, scale=scale, seed=int(seed), warm=bool(warm)
    )


@register_job("ablation-warm-start")
def _warm_start_job(
    *, registry: ModelRegistry | None = None, dataset: str, scale: str, seed: int, warm: bool
) -> dict:
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _attack_plan(trained, scale, seed)
    config = attack_config_for(scale, norm="l0", warm_start=warm)
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    return {
        "l0": result.l0_norm,
        "l2": result.l2_norm,
        "success_rate": result.success_rate,
        "keep_rate": result.keep_rate,
        "converged": float(result.converged),
    }


def _warm_jobs(scale: str, seed: int, dataset: str) -> list[JobSpec]:
    return [_warm_cell(dataset, scale, seed, warm) for warm in (True, False)]


def _warm_table(scale: str, seed: int, dataset: str, results: CampaignResult) -> Table:
    setting = get_setting(scale)
    table = Table(
        title=f"Ablation: dense warm start (l0 attack, S={_S}, R={_num_images(setting)})",
        columns=["warm start", "l0", "l2", "success rate", "keep rate", "converged"],
    )
    for warm in (True, False):
        metrics = results.metrics_for(_warm_cell(dataset, scale, seed, warm))
        table.add_row(
            warm,
            format_cell_int(metrics["l0"]),
            metrics["l2"],
            metrics["success_rate"],
            metrics["keep_rate"],
            bool(metrics["converged"]),
        )
    table.add_note(
        "Without the warm start the non-convex l0 problem tends to collapse to the "
        "trivial stationary point delta = 0 (success rate 0)."
    )
    return table


# -- delta step ----------------------------------------------------------------------


def _delta_cell(dataset: str, scale: str, seed: int, alpha) -> JobSpec:
    return JobSpec.make(
        "ablation-delta-step",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        alpha=None if alpha is None else float(alpha),
    )


@register_job("ablation-delta-step")
def _delta_step_job(
    *, registry: ModelRegistry | None = None, dataset: str, scale: str, seed: int, alpha
) -> dict:
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _attack_plan(trained, scale, seed)
    overrides = {} if alpha is None else {"alpha": float(alpha)}
    config = attack_config_for(scale, norm="l0", **overrides)
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    return {
        "l0": result.l0_norm,
        "l2": result.l2_norm,
        "success_rate": result.success_rate,
        "keep_rate": result.keep_rate,
    }


def _delta_jobs(scale: str, seed: int, dataset: str) -> list[JobSpec]:
    return [_delta_cell(dataset, scale, seed, alpha) for _, alpha in _DELTA_ALPHAS]


def _delta_table(scale: str, seed: int, dataset: str, results: CampaignResult) -> Table:
    setting = get_setting(scale)
    title = (
        f"Ablation: delta-step linearisation constant "
        f"(l0 attack, S={_S}, R={_num_images(setting)})"
    )
    table = Table(title=title, columns=["alpha", "l0", "l2", "success rate", "keep rate"])
    for label, alpha in _DELTA_ALPHAS:
        metrics = results.metrics_for(_delta_cell(dataset, scale, seed, alpha))
        table.add_row(
            label,
            format_cell_int(metrics["l0"]),
            metrics["l2"],
            metrics["success_rate"],
            metrics["keep_rate"],
        )
    table.add_note("The adaptive choice removes the need to tune alpha per model and S/R setting.")
    return table


# -- hardware cost -------------------------------------------------------------------


def _hardware_cell(dataset: str, scale: str, seed: int, norm: str) -> JobSpec:
    return JobSpec.make(
        "ablation-hardware-cost", dataset=dataset, scale=scale, seed=int(seed), norm=norm
    )


@register_job("ablation-hardware-cost")
def _hardware_cost_job(
    *, registry: ModelRegistry | None = None, dataset: str, scale: str, seed: int, norm: str
) -> dict:
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _attack_plan(trained, scale, seed)
    kappa = 1.0 if norm == "l0" else 0.0
    config = attack_config_for(scale, norm=norm, kappa=kappa)
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    metrics: dict[str, float] = {}
    # One attack, both storage formats: the injection campaigns only re-analyse
    # the modification, so flattening them into prefixed metrics avoids paying
    # the ADMM solve once per storage format.
    for storage in _STORAGES:
        spec = QuantizationSpec(storage)
        rowhammer = FaultInjectionCampaign(injector=RowHammerInjector(), spec=spec)
        laser = FaultInjectionCampaign(injector=LaserBeamInjector(), spec=spec)
        row_report = rowhammer.run(result)
        laser_report = laser.run(result)
        metrics[f"{storage}_words"] = row_report.plan.num_words_touched
        metrics[f"{storage}_flips"] = row_report.plan.num_flips
        metrics[f"{storage}_rows"] = row_report.plan.num_rows_touched
        metrics[f"{storage}_rowhammer_hours"] = row_report.cost.time_seconds / 3600.0
        metrics[f"{storage}_laser_hours"] = laser_report.cost.time_seconds / 3600.0
        metrics[f"{storage}_success"] = row_report.success_rate
    return metrics


def _hardware_jobs(scale: str, seed: int, dataset: str) -> list[JobSpec]:
    return [_hardware_cell(dataset, scale, seed, norm) for norm in ("l0", "l2")]


def _hardware_table(scale: str, seed: int, dataset: str, results: CampaignResult) -> Table:
    setting = get_setting(scale)
    table = Table(
        title=(
            f"Ablation: hardware injection cost of the modification "
            f"(S={_S}, R={_num_images(setting)})"
        ),
        columns=[
            "attack",
            "storage",
            "words touched",
            "bit flips",
            "rows touched",
            "rowhammer hours",
            "laser hours",
            "post-injection success",
        ],
    )
    for norm in ("l0", "l2"):
        metrics = results.metrics_for(_hardware_cell(dataset, scale, seed, norm))
        for storage in _STORAGES:
            table.add_row(
                f"{norm} attack",
                storage,
                format_cell_int(metrics[f"{storage}_words"]),
                format_cell_int(metrics[f"{storage}_flips"]),
                format_cell_int(metrics[f"{storage}_rows"]),
                metrics[f"{storage}_rowhammer_hours"],
                metrics[f"{storage}_laser_hours"],
                metrics[f"{storage}_success"],
            )
    table.add_note(
        "The l0 attack touches far fewer memory words, which is exactly the practicality "
        "argument the paper makes for minimising the number of modified parameters."
    )
    return table


# -- public drivers ------------------------------------------------------------------


def _single_ablation_runner(jobs_builder, table_builder, name: str):
    """Build a ``run``-style function for one ablation family."""

    def runner(
        scale: str = "ci",
        *,
        registry: ModelRegistry | None = None,
        seed: int = 0,
        dataset: str = "mnist_like",
        jobs: int = 1,
        executor=None,
        artifact_dir=None,
        **extra,
    ) -> Table:
        def build(scale, *, seed):
            return Campaign(
                name=name,
                scale=scale,
                seed=seed,
                jobs=tuple(jobs_builder(scale, seed, dataset, **extra)),
            )

        def assemble(campaign, results):
            return table_builder(campaign.scale, campaign.seed, dataset, **extra, results=results)

        return run_experiment(
            build,
            assemble,
            scale,
            registry=registry,
            seed=seed,
            jobs=jobs,
            executor=executor,
            artifact_dir=artifact_dir,
        )

    return runner


def rho_sweep(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    rhos=_DEFAULT_RHOS,
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """ℓ0 norm and success rate of the ℓ0 attack as a function of ρ."""
    runner = _single_ablation_runner(_rho_jobs, _rho_table, "ablation_rho")
    return runner(
        scale,
        registry=registry,
        seed=seed,
        dataset=dataset,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        rhos=tuple(float(rho) for rho in rhos),
    )


def warm_start_ablation(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """ADMM with and without the dense warm start."""
    runner = _single_ablation_runner(_warm_jobs, _warm_table, "ablation_warm_start")
    return runner(
        scale,
        registry=registry,
        seed=seed,
        dataset=dataset,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
    )


def delta_step_ablation(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Adaptive trust-region α vs fixed α in the linearised δ-step."""
    runner = _single_ablation_runner(_delta_jobs, _delta_table, "ablation_delta_step")
    return runner(
        scale,
        registry=registry,
        seed=seed,
        dataset=dataset,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
    )


def hardware_cost(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Memory-level cost of executing the ℓ0 vs ℓ2 modification."""
    runner = _single_ablation_runner(_hardware_jobs, _hardware_table, "ablation_hardware_cost")
    return runner(
        scale,
        registry=registry,
        seed=seed,
        dataset=dataset,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
    )


def build_campaign(
    scale: str = "ci",
    *,
    seed: int = 0,
    dataset: str = "mnist_like",
    rhos=_DEFAULT_RHOS,
) -> Campaign:
    """Declare every ablation row as one combined campaign."""
    rhos = tuple(float(rho) for rho in rhos)
    jobs = (
        _rho_jobs(scale, seed, dataset, rhos)
        + _warm_jobs(scale, seed, dataset)
        + _delta_jobs(scale, seed, dataset)
        + _hardware_jobs(scale, seed, dataset)
    )
    return Campaign(
        name="ablations",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"dataset": dataset, "rhos": rhos},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Merge the per-family ablation tables into a single wide table."""
    scale, seed = campaign.scale, campaign.seed
    dataset = campaign.metadata["dataset"]
    rhos = campaign.metadata["rhos"]
    tables = [
        _rho_table(scale, seed, dataset, rhos, results),
        _warm_table(scale, seed, dataset, results),
        _delta_table(scale, seed, dataset, results),
        _hardware_table(scale, seed, dataset, results),
    ]
    merged = Table(title="Ablation studies", columns=["ablation", "row"])
    for table in tables:
        for row in table.rows:
            merged.add_row(table.title, " | ".join(str(v) for v in row))
        merged.notes.extend(table.notes)
    return merged


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Run every ablation and merge the results into a single wide table."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        dataset=dataset,
    )
