"""Ablation studies beyond the paper's tables.

These quantify the design choices called out in DESIGN.md:

* ``rho_sweep`` — how the ADMM penalty ρ trades off the ℓ0 norm against the
  attack's success (the hard-threshold level is ``sqrt(2/ρ)``).
* ``warm_start`` — ADMM started from zero vs from the dense warm start.
* ``delta_step`` — adaptive trust-region α vs the fixed α of eq. (22).
* ``hardware_cost`` — bit flips and injector effort implied by the ℓ0 vs ℓ2
  modification, under float32 and float16 parameter storage.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.hardware import (
    FaultInjectionCampaign,
    LaserBeamInjector,
    RowHammerInjector,
)
from repro.nn.quantization import QuantizationSpec
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "rho_sweep", "warm_start_ablation", "delta_step_ablation", "hardware_cost"]

# Ablation (S, R) working point: small enough to run per-row in seconds,
# large enough that sparsification and stealth both matter.
_S, _R = 4, 100


def _plan(trained, seed: int):
    test_set = trained.data.test
    return make_attack_plan(
        test_set, num_targets=_S, num_images=min(_R, len(test_set)), seed=seed + 23
    )


def rho_sweep(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    rhos=(100.0, 500.0, 2000.0, 8000.0),
) -> Table:
    """ℓ0 norm and success rate of the ℓ0 attack as a function of ρ."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _plan(trained, seed)
    table = Table(
        title=f"Ablation: ADMM penalty rho sweep (l0 attack, S={_S}, R={plan.num_images})",
        columns=["rho", "hard threshold", "l0", "l2", "success rate", "keep rate"],
    )
    for rho in rhos:
        config = attack_config_for(scale, norm="l0", rho=float(rho))
        result = FaultSneakingAttack(trained.model, config).attack(plan)
        table.add_row(
            float(rho),
            (2.0 / float(rho)) ** 0.5,
            result.l0_norm,
            result.l2_norm,
            result.success_rate,
            result.keep_rate,
        )
    table.add_note("Smaller rho = higher threshold = sparser modification, until success degrades.")
    return table


def warm_start_ablation(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
) -> Table:
    """ADMM with and without the dense warm start."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _plan(trained, seed)
    table = Table(
        title=f"Ablation: dense warm start (l0 attack, S={_S}, R={plan.num_images})",
        columns=["warm start", "l0", "l2", "success rate", "keep rate", "converged"],
    )
    for warm in (True, False):
        config = attack_config_for(scale, norm="l0", warm_start=warm)
        result = FaultSneakingAttack(trained.model, config).attack(plan)
        table.add_row(
            warm, result.l0_norm, result.l2_norm, result.success_rate, result.keep_rate,
            result.converged,
        )
    table.add_note(
        "Without the warm start the non-convex l0 problem tends to collapse to the "
        "trivial stationary point delta = 0 (success rate 0)."
    )
    return table


def delta_step_ablation(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
) -> Table:
    """Adaptive trust-region α vs fixed α in the linearised δ-step."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _plan(trained, seed)
    table = Table(
        title=f"Ablation: delta-step linearisation constant (l0 attack, S={_S}, R={plan.num_images})",
        columns=["alpha", "l0", "l2", "success rate", "keep rate"],
    )
    for label, overrides in [
        ("adaptive (trust region)", {}),
        ("fixed alpha=1", {"alpha": 1.0}),
        ("fixed alpha=10", {"alpha": 10.0}),
    ]:
        config = attack_config_for(scale, norm="l0", **overrides)
        result = FaultSneakingAttack(trained.model, config).attack(plan)
        table.add_row(label, result.l0_norm, result.l2_norm, result.success_rate, result.keep_rate)
    table.add_note("The adaptive choice removes the need to tune alpha per model and S/R setting.")
    return table


def hardware_cost(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
) -> Table:
    """Memory-level cost of executing the ℓ0 vs ℓ2 modification."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    plan = _plan(trained, seed)
    table = Table(
        title=f"Ablation: hardware injection cost of the modification (S={_S}, R={plan.num_images})",
        columns=[
            "attack",
            "storage",
            "words touched",
            "bit flips",
            "rows touched",
            "rowhammer hours",
            "laser hours",
            "post-injection success",
        ],
    )
    for norm in ("l0", "l2"):
        kappa = 1.0 if norm == "l0" else 0.0
        config = attack_config_for(scale, norm=norm, kappa=kappa)
        result = FaultSneakingAttack(trained.model, config).attack(plan)
        for storage in ("float32", "float16"):
            spec = QuantizationSpec(storage)
            rowhammer = FaultInjectionCampaign(injector=RowHammerInjector(), spec=spec)
            laser = FaultInjectionCampaign(injector=LaserBeamInjector(), spec=spec)
            row_report = rowhammer.run(result)
            laser_report = laser.run(result)
            table.add_row(
                f"{norm} attack",
                storage,
                row_report.plan.num_words_touched,
                row_report.plan.num_flips,
                row_report.plan.num_rows_touched,
                row_report.cost.time_seconds / 3600.0,
                laser_report.cost.time_seconds / 3600.0,
                row_report.success_rate,
            )
    table.add_note(
        "The l0 attack touches far fewer memory words, which is exactly the practicality "
        "argument the paper makes for minimising the number of modified parameters."
    )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
) -> Table:
    """Run every ablation and merge the results into a single wide table."""
    tables = [
        rho_sweep(scale, registry=registry, seed=seed),
        warm_start_ablation(scale, registry=registry, seed=seed),
        delta_step_ablation(scale, registry=registry, seed=seed),
        hardware_cost(scale, registry=registry, seed=seed),
    ]
    merged = Table(title="Ablation studies", columns=["ablation", "row"])
    for table in tables:
        for row in table.rows:
            merged.add_row(table.title, " | ".join(str(v) for v in row))
        merged.notes.extend(table.notes)
    return merged
