"""Table 1 — ℓ0 norm of the modification per attacked fully connected layer.

The paper attacks each of the three FC layers of the MNIST network in turn
with ``S = R ∈ {1, 4, 16}`` and reports the number of modified parameters.
The headline observation: attacking the *last* FC layer needs far fewer
modifications than attacking earlier layers, because it influences the logits
most directly.  This driver reproduces the same rows for the MNIST-like model.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.parameter_view import ParameterSelector, ParameterView
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble", "ATTACKED_LAYERS"]

# The three FC layers of the benchmark architectures, first to last.
ATTACKED_LAYERS = ("fc1", "fc2", "fc_logits")


def _cell(dataset: str, scale: str, seed: int, layer: str, s: int) -> JobSpec:
    return JobSpec.make(
        "layer-attack",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        layer=layer,
        s=int(s),
        plan_seed=int(seed + s),
    )


@register_job("layer-attack")
def _layer_attack_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    layer: str,
    s: int,
    plan_seed: int,
) -> dict:
    """Attack a single FC layer with S = R targets and report the l0 norm."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    model = trained.model
    total_params = ParameterView(model, ParameterSelector(layers=(layer,))).size
    config = attack_config_for(scale, norm="l0", layers=(layer,))
    plan = make_attack_plan(trained.data.test, num_targets=s, num_images=s, seed=plan_seed)
    result = FaultSneakingAttack(model, config).attack(plan)
    return {
        "l0": result.l0_norm,
        "success_rate": result.success_rate,
        "total_params": total_params,
    }


def build_campaign(
    scale: str = "ci", *, seed: int = 0, dataset: str = "mnist_like"
) -> Campaign:
    """Declare one job per (layer, S) cell of Table 1."""
    setting = get_setting(scale)
    jobs = [
        _cell(dataset, scale, seed, layer, s)
        for layer in ATTACKED_LAYERS
        for s in setting.layer_s_values
    ]
    return Campaign(
        name="table1",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"dataset": dataset},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-cell metrics into the paper's Table 1."""
    setting = get_setting(campaign.scale)
    dataset = campaign.metadata["dataset"]
    s_values = setting.layer_s_values
    columns = ["layer", "total_params"] + [f"l0 (S=R={s})" for s in s_values]
    table = Table(
        title=f"Table 1: l0 norm of parameter modifications per FC layer ({dataset})",
        columns=columns,
    )

    for layer in ATTACKED_LAYERS:
        row = [layer]
        cells = []
        total_params = 0
        for s in s_values:
            metrics = results.metrics_for(_cell(dataset, campaign.scale, campaign.seed, layer, s))
            total_params = format_cell_int(metrics["total_params"])
            l0 = format_cell_int(metrics["l0"])
            cells.append(l0 if metrics["success_rate"] >= 1.0 else f"{l0}*")
        row.append(total_params)
        row.extend(cells)
        table.add_row(*row)

    table.add_note(
        "Paper reference (MNIST, S=R=1/4/16): fc1 205000 params -> 14016/40649/120597, "
        "fc2 40200 -> 5390/14086/34069, last FC 2010 -> 222/682/1755."
    )
    table.add_note(
        "Expected shape: the last FC layer needs the fewest modifications; "
        "the l0 norm grows with S."
    )
    table.add_note("Entries marked with '*' did not reach 100% attack success.")
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce Table 1 and return it as a :class:`Table`."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        dataset=dataset,
    )
