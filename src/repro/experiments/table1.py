"""Table 1 — ℓ0 norm of the modification per attacked fully connected layer.

The paper attacks each of the three FC layers of the MNIST network in turn
with ``S = R ∈ {1, 4, 16}`` and reports the number of modified parameters.
The headline observation: attacking the *last* FC layer needs far fewer
modifications than attacking earlier layers, because it influences the logits
most directly.  This driver reproduces the same rows for the MNIST-like model.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.parameter_view import ParameterSelector, ParameterView
from repro.attacks.targets import make_attack_plan
from repro.experiments.common import attack_config_for, get_setting, get_trained_model
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "ATTACKED_LAYERS"]

# The three FC layers of the benchmark architectures, first to last.
ATTACKED_LAYERS = ("fc1", "fc2", "fc_logits")


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    dataset: str = "mnist_like",
) -> Table:
    """Reproduce Table 1 and return it as a :class:`Table`."""
    setting = get_setting(scale)
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    model = trained.model
    test_set = trained.data.test

    s_values = setting.layer_s_values
    columns = ["layer", "total_params"] + [f"l0 (S=R={s})" for s in s_values]
    table = Table(
        title=f"Table 1: l0 norm of parameter modifications per FC layer ({dataset})",
        columns=columns,
    )

    for layer_name in ATTACKED_LAYERS:
        selector = ParameterSelector(layers=(layer_name,))
        total_params = ParameterView(model, selector).size
        row = [layer_name, total_params]
        for s in s_values:
            config = attack_config_for(scale, norm="l0", layers=(layer_name,))
            plan = make_attack_plan(
                test_set, num_targets=s, num_images=s, seed=seed + s
            )
            result = FaultSneakingAttack(model, config).attack(plan)
            cell = result.l0_norm if result.success_rate >= 1.0 else f"{result.l0_norm}*"
            row.append(cell)
        table.add_row(*row)

    table.add_note(
        "Paper reference (MNIST, S=R=1/4/16): fc1 205000 params -> 14016/40649/120597, "
        "fc2 40200 -> 5390/14086/34069, last FC 2010 -> 222/682/1755."
    )
    table.add_note(
        "Expected shape: the last FC layer needs the fewest modifications; "
        "the l0 norm grows with S."
    )
    table.add_note("Entries marked with '*' did not reach 100% attack success.")
    return table
