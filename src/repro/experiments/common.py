"""Shared infrastructure for the experiment drivers.

The paper's evaluation always starts from the same two trained networks (one
per dataset) and varies the attack configuration and the (S, R) grid.  This
module centralises:

* the per-scale experiment settings (grid sizes, training budget, ADMM
  iteration counts) so that the full suite can run either as a quick CI pass
  or at the paper's scale;
* trained-model acquisition through the :mod:`repro.zoo.registry` so that a
  model is trained at most once per process / cache directory;
* the ``sweep-cell`` campaign job shared by Table 4 and Figures 1–2 (one
  fault-sneaking attack at a single (S, R) grid point, evaluated against the
  anchor/evaluation split).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.evaluation import evaluate_attack_result, evaluate_attack_results
from repro.attacks.baselines import (
    GradientDescentAttack,
    GradientDescentAttackConfig,
    SingleBiasAttack,
    SingleBiasAttackConfig,
)
from repro.attacks.fault_sneaking import FaultSneakingAttack, FaultSneakingConfig
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import JobSpec, register_job
from repro.experiments.fusion import register_fusion
from repro.utils.errors import ConfigurationError
from repro.zoo.registry import ModelRegistry, ModelSpec, TrainedModel, default_registry

__all__ = [
    "ExperimentSetting",
    "SETTINGS",
    "get_setting",
    "get_trained_model",
    "attack_config_for",
    "anchor_and_eval_split",
    "anchor_pool_size",
    "usable_r_values",
    "sweep_cell_spec",
    "S1_BASELINE_ATTACKS",
    "s1_num_images",
    "run_s1_attack",
]


@dataclass(frozen=True)
class ExperimentSetting:
    """Grid sizes and budgets for one experiment scale.

    Attributes
    ----------
    name:
        ``"smoke"``, ``"ci"``, ``"paper"`` or ``"full"``.
    architecture:
        Architecture name passed to the model registry.
    n_train, n_test, epochs:
        Training budget of the victim models.
    s_values, r_values:
        Default S and R grids (Table 4 / Figures 1–2).
    layer_s_values:
        S (= R) grid of Table 1.
    type_s_values:
        S (= R) grid of Table 2.
    norm_settings:
        (S, R) pairs of Table 3.
    tolerance_s_values, tolerance_r:
        S grid and fixed R of Figure 3.
    baseline_r:
        R of the §5.4 baseline comparison (S = 1).
    hardware_s_values:
        S grid of the bit-true hardware-cost experiment.
    attack_iterations, warmup_iterations, refine_steps:
        ADMM budget shared by all attacks at this scale.
    """

    name: str
    architecture: str
    n_train: int
    n_test: int
    epochs: int
    s_values: tuple[int, ...]
    r_values: tuple[int, ...]
    layer_s_values: tuple[int, ...]
    type_s_values: tuple[int, ...]
    norm_settings: tuple[tuple[int, int], ...]
    tolerance_s_values: tuple[int, ...]
    tolerance_r: int
    baseline_r: int
    attack_iterations: int
    warmup_iterations: int
    refine_steps: int
    hidden: tuple[int, int] = (200, 200)
    hardware_s_values: tuple[int, ...] = (1, 4)


SETTINGS: dict[str, ExperimentSetting] = {
    # "smoke" exists for fast sanity checks (unit tests, demos on very slow
    # machines); its grids are too small to reproduce the paper's trends.
    "smoke": ExperimentSetting(
        name="smoke",
        architecture="compact_cnn",
        n_train=600,
        n_test=250,
        epochs=6,
        s_values=(1, 2),
        r_values=(10, 30),
        layer_s_values=(1, 2),
        type_s_values=(1, 2),
        norm_settings=((1, 10), (2, 10)),
        tolerance_s_values=(1, 4),
        tolerance_r=10,
        baseline_r=30,
        attack_iterations=60,
        warmup_iterations=250,
        refine_steps=30,
        hidden=(64, 32),
        hardware_s_values=(1, 2),
    ),
    "ci": ExperimentSetting(
        name="ci",
        architecture="compact_cnn",
        n_train=1500,
        n_test=600,
        epochs=4,
        s_values=(1, 4),
        r_values=(50, 200),
        layer_s_values=(1, 4),
        type_s_values=(1, 2, 4),
        norm_settings=((1, 10), (5, 10), (5, 20)),
        tolerance_s_values=(2, 6, 12),
        tolerance_r=20,
        baseline_r=100,
        attack_iterations=150,
        warmup_iterations=300,
        refine_steps=50,
    ),
    "paper": ExperimentSetting(
        name="paper",
        architecture="compact_cnn",
        n_train=4000,
        n_test=2000,
        epochs=8,
        s_values=(1, 2, 4, 8, 16),
        r_values=(50, 100, 200, 500, 1000),
        layer_s_values=(1, 4, 16),
        type_s_values=(1, 2, 4, 8),
        norm_settings=((1, 10), (5, 10), (5, 20)),
        tolerance_s_values=(1, 2, 4, 8, 16, 32, 64, 128),
        tolerance_r=200,
        baseline_r=1000,
        attack_iterations=300,
        warmup_iterations=600,
        refine_steps=100,
        hardware_s_values=(1, 4, 16),
    ),
    "full": ExperimentSetting(
        name="full",
        architecture="paper_cnn",
        n_train=6000,
        n_test=2000,
        epochs=10,
        s_values=(1, 2, 4, 8, 16),
        r_values=(50, 100, 200, 500, 1000),
        layer_s_values=(1, 4, 16),
        type_s_values=(1, 2, 4, 8),
        norm_settings=((1, 10), (5, 10), (5, 20)),
        tolerance_s_values=(1, 2, 4, 8, 16, 32, 64, 128),
        tolerance_r=200,
        baseline_r=1000,
        attack_iterations=300,
        warmup_iterations=600,
        refine_steps=100,
        hardware_s_values=(1, 4, 16),
    ),
}


def get_setting(scale: str) -> ExperimentSetting:
    """Return the :class:`ExperimentSetting` for a scale name."""
    try:
        return SETTINGS[scale]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scale {scale!r}; expected one of {sorted(SETTINGS)}"
        ) from exc


def get_trained_model(
    dataset: str,
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
) -> TrainedModel:
    """Return the trained victim model for a dataset at a given scale."""
    setting = get_setting(scale)
    registry = registry or default_registry()
    spec = ModelSpec(
        dataset=dataset,
        architecture=setting.architecture,
        n_train=setting.n_train,
        n_test=setting.n_test,
        hidden=setting.hidden,
        epochs=setting.epochs,
        seed=seed,
    )
    return registry.get(spec)


def anchor_and_eval_split(trained: TrainedModel):
    """Split the held-out data into a disjoint anchor pool and evaluation set.

    The paper's adversary picks its ``R`` anchor images independently of the
    data used to report test accuracy (it is not even assumed to know the
    test set).  Drawing anchors from the same images that accuracy is
    measured on would let the keep constraint trivially inflate the reported
    accuracy at large ``R``, so every experiment that reports accuracy
    retention uses this split: even-indexed test samples form the anchor
    pool, odd-indexed samples form the evaluation set.  The test split is
    i.i.d., so the parity split is unbiased and deterministic.

    Returns
    -------
    (anchor_pool, eval_set):
        Two disjoint :class:`~repro.data.dataset.Dataset` objects.
    """
    test = trained.data.test
    indices = list(range(len(test)))
    anchor_pool = test.subset(indices[0::2])
    eval_set = test.subset(indices[1::2])
    return anchor_pool, eval_set


def attack_config_for(
    scale: str,
    *,
    norm: str = "l0",
    layers: tuple[str, ...] | None = ("fc_logits",),
    **overrides,
) -> FaultSneakingConfig:
    """Return the attack configuration used by the experiments at ``scale``.

    Additional keyword arguments override individual
    :class:`FaultSneakingConfig` fields.
    """
    setting = get_setting(scale)
    base = FaultSneakingConfig(
        norm=norm,
        layers=layers,
        iterations=setting.attack_iterations,
        warmup_iterations=setting.warmup_iterations,
        refine_support_steps=setting.refine_steps,
    )
    return replace(base, **overrides) if overrides else base


def anchor_pool_size(setting: ExperimentSetting) -> int:
    """Size of the anchor pool produced by :func:`anchor_and_eval_split`.

    The pool is the even-indexed half of the ``n_test`` held-out samples, so
    its size is known without training the model — grid builders use this to
    drop ``R`` values that exceed the pool without touching the registry.
    """
    return (setting.n_test + 1) // 2


def usable_r_values(setting: ExperimentSetting) -> list[int]:
    """The R grid restricted to values the anchor pool can supply."""
    limit = anchor_pool_size(setting)
    return [int(r) for r in setting.r_values if r <= limit]


def sweep_cell_spec(
    *,
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    r: int,
    norm: str = "l0",
    target_strategy: str = "random",
    plan_seed: int | None = None,
) -> JobSpec:
    """Declare one (S, R) grid point of the shared fault-sneaking sweep.

    Table 4 and Figures 1–2 all build their grids from this spec, so when a
    campaign (or the artifact store) sees the same cell twice it is attacked
    only once.  ``plan_seed`` defaults to ``seed``, mirroring the paper's
    protocol of reusing one plan seed across the whole grid.
    """
    return JobSpec.make(
        "sweep-cell",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        s=int(s),
        r=int(r),
        norm=norm,
        target_strategy=target_strategy,
        plan_seed=int(seed if plan_seed is None else plan_seed),
    )


# (attack parameter value, table row label), in the paper's reporting order.
# Shared by the §5.4 baseline comparison and the detectability extension,
# which run the same three attacks under the same S = 1 requirement.
S1_BASELINE_ATTACKS = (
    ("fault_sneaking", "fault sneaking (l0)"),
    ("gda", "GDA (Liu et al.)"),
    ("sba", "SBA (Liu et al.)"),
)


def s1_num_images(setting: ExperimentSetting) -> int:
    """The R used by the S = 1 baseline/detectability experiments."""
    return min(setting.baseline_r, anchor_pool_size(setting))


def run_s1_attack(attack: str, model, plan, scale: str):
    """Run one of the three S = 1 attacks and return ``(result, success)``.

    ``result`` exposes ``modified_model()``, ``l0_norm`` and ``l2_norm`` for
    all three attacks; ``success`` normalises SBA's boolean ``success``
    against the others' ``success_rate``.
    """
    if attack == "fault_sneaking":
        result = FaultSneakingAttack(model, attack_config_for(scale, norm="l0")).attack(plan)
        return result, float(result.success_rate)
    if attack == "gda":
        config = GradientDescentAttackConfig(iterations=get_setting(scale).attack_iterations)
        result = GradientDescentAttack(model, config).attack(plan)
        return result, float(result.success_rate)
    if attack == "sba":
        sba = SingleBiasAttack(model, SingleBiasAttackConfig())
        result = sba.attack(plan.target_images[0], int(plan.target_labels[0]))
        return result, float(result.success)
    raise ConfigurationError(
        f"unknown S=1 attack {attack!r}; expected one of "
        f"{[name for name, _ in S1_BASELINE_ATTACKS]}"
    )


@register_job("sweep-cell")
def _sweep_cell_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    s: int,
    r: int,
    norm: str = "l0",
    target_strategy: str = "random",
    plan_seed: int = 0,
) -> dict:
    """Attack one (S, R) grid point and return the full evaluation metrics."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    anchor_pool, eval_set = anchor_and_eval_split(trained)
    config = attack_config_for(scale, norm=norm)
    clean_accuracy = trained.model.evaluate(eval_set.images, eval_set.labels)
    plan = make_attack_plan(
        anchor_pool,
        num_targets=s,
        num_images=r,
        target_strategy=target_strategy,
        seed=plan_seed,
    )
    result = FaultSneakingAttack(trained.model, config).attack(plan)
    evaluation = evaluate_attack_result(
        result,
        eval_set,
        clean_model=trained.model,
        clean_accuracy=clean_accuracy,
        zero_tolerance=config.zero_tolerance,
    )
    return evaluation.as_dict()


def _sweep_cell_group_key(params: dict) -> tuple:
    """Fusion compatibility key of one sweep cell.

    Everything that must be *shared* across the lanes of one stacked solve:
    the victim model (dataset, scale, seed), the attack configuration (scale,
    norm) and the anchor count R (the stacked objective needs one common
    image-batch shape).  S and the plan seed vary lane to lane.
    """
    return (
        params["dataset"],
        params["scale"],
        int(params["seed"]),
        int(params["r"]),
        params.get("norm", "l0"),
        params.get("target_strategy", "random"),
    )


@register_fusion("sweep-cell", group_key=_sweep_cell_group_key)
def _sweep_cell_batch(specs, *, registry: ModelRegistry | None = None) -> list[dict]:
    """Attack a group of compatible (S, R) grid points in one stacked solve.

    The victim model, the anchor/evaluation split, the attack configuration
    and the clean accuracy are computed once for the whole group; each cell
    contributes its own attack plan as one lane of the batched solver.  Each
    lane's metrics are bit-identical to what :func:`_sweep_cell_job` returns
    for that cell alone (the batched solver mirrors the scalar arithmetic
    ULP for ULP), so fusing is invisible to manifests and tables.
    """
    from repro.attacks.batched import BatchedFaultSneakingAttack

    first = specs[0].param_dict()
    trained = get_trained_model(
        first["dataset"], first["scale"], registry=registry, seed=int(first["seed"])
    )
    anchor_pool, eval_set = anchor_and_eval_split(trained)
    config = attack_config_for(first["scale"], norm=first.get("norm", "l0"))
    clean_accuracy = trained.model.evaluate(eval_set.images, eval_set.labels)
    plans = [
        make_attack_plan(
            anchor_pool,
            num_targets=int(params["s"]),
            num_images=int(params["r"]),
            target_strategy=params.get("target_strategy", "random"),
            seed=int(params.get("plan_seed", 0)),
        )
        for params in (spec.param_dict() for spec in specs)
    ]
    results = BatchedFaultSneakingAttack(trained.model, config).attack_batch(plans)
    evaluations = evaluate_attack_results(
        results,
        eval_set,
        clean_model=trained.model,
        clean_accuracy=clean_accuracy,
        zero_tolerance=config.zero_tolerance,
    )
    return [evaluation.as_dict() for evaluation in evaluations]
