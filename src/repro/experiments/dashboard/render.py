"""Plain-text rendering of an aggregated telemetry stream (no Textual).

These renderers back both the ``--plain`` dashboard mode and the headless
fallback when the optional ``[dashboard]`` extra (Textual) is not installed.
They consume a :class:`~repro.experiments.telemetry.aggregate.RunAggregator`
and produce the same three views the TUI shows: summary header, per-job
table, and a per-cell metric drill-down.
"""

from __future__ import annotations

import math

from repro.analysis.reporting import Table
from repro.experiments.telemetry.aggregate import JobView, RunAggregator

__all__ = ["render_summary", "render_jobs_table", "render_job_detail", "render_run"]

# Job keys are content hashes; this many characters are plenty to tell cells
# apart on screen while keeping the table narrow.
KEY_DISPLAY_CHARS = 12


def _fmt(value: float, digits: int = 2) -> str:
    if value != value:  # NaN
        return "-"
    return f"{value:.{digits}f}"


def render_summary(agg: RunAggregator) -> str:
    """One-paragraph run summary: identity, progress, throughput, workers."""
    counts = agg.counts()
    lines = [
        f"campaign: {agg.campaign or '?'}  scale: {agg.scale or '?'}  "
        f"executor: {agg.executor or '?'}",
        f"jobs: {agg.total_jobs} total | "
        + " ".join(f"{state}={count}" for state, count in counts.items()),
        f"cache-hit rate: {_fmt(agg.cache_hit_rate())}  "
        f"throughput: {_fmt(agg.jobs_per_second())} jobs/s  "
        f"elapsed: {_fmt(agg.elapsed_s(), 1)}s",
    ]
    if agg.workers:
        attached = sum(1 for state in agg.workers.values() if state == "attached")
        lines.append(f"workers: {attached} attached / {len(agg.workers)} seen")
    return "\n".join(lines)


def render_jobs_table(agg: RunAggregator) -> Table:
    """Per-job state table (the plain twin of the TUI DataTable)."""
    table = Table(
        title="Campaign jobs",
        columns=["key", "kind", "state", "attempts", "worker", "duration_s"],
    )
    for key, job in sorted(agg.jobs.items()):
        table.add_row(
            key[:KEY_DISPLAY_CHARS],
            job.kind,
            job.state,
            job.attempts,
            job.worker or "-",
            job.duration_s if job.duration_s == job.duration_s else "",
        )
    percentiles = agg.latency_percentiles()
    for kind, stats in percentiles.items():
        table.add_note(
            f"{kind}: p50={_fmt(stats['p50'], 3)}s "
            f"p90={_fmt(stats['p90'], 3)}s p99={_fmt(stats['p99'], 3)}s"
        )
    return table


def render_job_detail(job: JobView) -> Table:
    """Metric drill-down for one cell (e.g. a LoweringReport's fields)."""
    table = Table(
        title=f"Job {job.key[:KEY_DISPLAY_CHARS]} ({job.kind}, {job.state})",
        columns=["metric", "value"],
    )
    for name, value in sorted(job.metrics.items()):
        if value is None:
            rendered = "NaN"
        elif isinstance(value, float) and math.isnan(value):
            rendered = "NaN"
        else:
            rendered = value
        table.add_row(name, rendered)
    if not job.metrics:
        table.add_note("no metrics reported yet")
    return table


def render_run(agg: RunAggregator, *, details: bool = False) -> str:
    """Full plain-text dashboard: summary, job table, optional drill-downs."""
    blocks = [render_summary(agg), render_jobs_table(agg).render("text")]
    ci_widths = agg.mc_ci_widths()
    if ci_widths:
        ci = Table(title="Monte-Carlo CI half-widths", columns=["key", "metric", "width"])
        for key, widths in ci_widths.items():
            for metric, width in sorted(widths.items()):
                ci.add_row(key[:KEY_DISPLAY_CHARS], metric, width)
        blocks.append(ci.render("text"))
    if details:
        for _, job in sorted(agg.jobs.items()):
            if job.metrics:
                blocks.append(render_job_detail(job).render("text"))
    return "\n\n".join(blocks)
