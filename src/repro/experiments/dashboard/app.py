"""Textual TUI for the campaign dashboard (requires the ``[dashboard]`` extra).

The application shows a live (or replayed) campaign as three regions:

* a summary header (campaign, executor, state counts, cache-hit rate,
  throughput) refreshed on a timer;
* a per-job ``DataTable`` — one row per cell with state, attempts, worker and
  duration — with cursor navigation;
* a drill-down panel showing the selected cell's full metric dictionary
  (for ``hardware-cost-cell`` jobs, the bit-true ``LoweringReport`` fields).

Key bindings: ``q`` quit, ``d`` toggle the drill-down panel, ``r`` force a
refresh.  Events arrive either from a finished iterable (replay mode) or
from a reader thread tailing the runner's telemetry socket; the UI thread
drains a queue on a timer, so a stalled producer never freezes the screen.

Import of this module succeeds only with Textual installed; the CLI
(:mod:`repro.experiments.dashboard.__main__`) degrades to the plain renderer
otherwise.
"""

from __future__ import annotations

import queue
import socket
import threading
from collections.abc import Iterable

from textual.app import App, ComposeResult
from textual.binding import Binding
from textual.widgets import DataTable, Footer, Header, Static

from repro.experiments.dashboard.render import (
    KEY_DISPLAY_CHARS,
    render_job_detail,
    render_summary,
)
from repro.experiments.telemetry.aggregate import RunAggregator
from repro.experiments.telemetry.bus import read_events
from repro.experiments.telemetry.events import TelemetryEvent

__all__ = ["DashboardApp"]

_COLUMNS = ("key", "kind", "state", "attempts", "worker", "duration_s")


class DashboardApp(App):
    """Campaign telemetry dashboard."""

    TITLE = "repro campaign dashboard"
    CSS = """
    #summary { height: auto; padding: 0 1; border: solid $accent; }
    #jobs { height: 1fr; }
    #detail { height: auto; max-height: 40%; padding: 0 1;
              border: solid $secondary; display: none; }
    #detail.visible { display: block; }
    """
    BINDINGS = [
        Binding("q", "quit", "Quit"),
        Binding("d", "toggle_detail", "Detail"),
        Binding("r", "refresh_now", "Refresh"),
    ]

    def __init__(
        self,
        *,
        events: Iterable[TelemetryEvent] | None = None,
        host: str | None = None,
        port: int | None = None,
        interval: float = 0.5,
    ) -> None:
        super().__init__()
        self._aggregator = RunAggregator()
        self._incoming: queue.Queue[TelemetryEvent] = queue.Queue()
        self._interval = interval
        self._host = host
        self._port = port
        self._reader: threading.Thread | None = None
        self._stop = threading.Event()
        if events is not None:
            for event in events:
                self._incoming.put(event)

    # -- layout ----------------------------------------------------------------------

    def compose(self) -> ComposeResult:
        yield Header()
        yield Static(id="summary")
        yield DataTable(id="jobs", cursor_type="row", zebra_stripes=True)
        yield Static(id="detail")
        yield Footer()

    def on_mount(self) -> None:
        table = self.query_one("#jobs", DataTable)
        for column in _COLUMNS:
            table.add_column(column, key=column)
        if self._host is not None and self._port is not None:
            self._reader = threading.Thread(
                target=self._tail_socket, name="dashboard-reader", daemon=True
            )
            self._reader.start()
        self._drain()
        self.set_interval(self._interval, self._drain)

    def on_unmount(self) -> None:
        self._stop.set()

    # -- event ingestion -------------------------------------------------------------

    def _tail_socket(self) -> None:
        """Reader thread: stream frames from the runner's telemetry socket."""
        try:
            with socket.create_connection((self._host, self._port), timeout=10.0) as conn:
                conn.settimeout(1.0)
                stream = conn.makefile("rb")
                while not self._stop.is_set():
                    try:
                        line = stream.readline()
                    except socket.timeout:
                        continue
                    if not line:
                        return
                    for event in read_events([line]):
                        self._incoming.put(event)
        except OSError as exc:
            self.call_from_thread(
                self.notify, f"telemetry socket lost: {exc}", severity="warning"
            )

    def _drain(self) -> None:
        """UI-thread timer: fold queued events and repaint."""
        changed = False
        while True:
            try:
                event = self._incoming.get_nowait()
            except queue.Empty:
                break
            self._aggregator.emit(event)
            changed = True
        if changed:
            self._repaint()

    # -- painting --------------------------------------------------------------------

    def _repaint(self) -> None:
        self.query_one("#summary", Static).update(render_summary(self._aggregator))
        table = self.query_one("#jobs", DataTable)
        for key, job in sorted(self._aggregator.jobs.items()):
            duration = (
                f"{job.duration_s:.3f}" if job.duration_s == job.duration_s else ""
            )
            cells = (
                key[:KEY_DISPLAY_CHARS],
                job.kind,
                job.state,
                str(job.attempts),
                job.worker or "-",
                duration,
            )
            if key in table.rows:
                for column, value in zip(_COLUMNS, cells):
                    table.update_cell(key, column, value)
            else:
                table.add_row(*cells, key=key)
        self._update_detail()

    def _update_detail(self) -> None:
        detail = self.query_one("#detail", Static)
        if not detail.has_class("visible"):
            return
        table = self.query_one("#jobs", DataTable)
        if table.cursor_row is None or table.row_count == 0:
            detail.update("no job selected")
            return
        row_key = table.coordinate_to_cell_key((table.cursor_row, 0)).row_key
        job = self._aggregator.jobs.get(str(row_key.value))
        if job is None:
            detail.update("no job selected")
            return
        detail.update(render_job_detail(job).render("text"))

    # -- actions ---------------------------------------------------------------------

    def action_toggle_detail(self) -> None:
        self.query_one("#detail", Static).toggle_class("visible")
        self._update_detail()

    def action_refresh_now(self) -> None:
        self._drain()
        self._repaint()

    def on_data_table_row_highlighted(self, _event: object) -> None:
        self._update_detail()
