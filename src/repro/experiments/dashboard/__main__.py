"""CLI of the campaign dashboard: ``python -m repro.experiments.dashboard``.

Replay a finished run log::

    python -m repro.experiments.dashboard --replay run.jsonl

Tail a live campaign (start the runner with ``--telemetry-port``)::

    python -m repro.experiments.dashboard --connect <port>

``--plain`` forces the stdlib text renderer; it is also the automatic
fallback when the optional Textual dependency (``pip install -e
.[dashboard]``) is missing, so ``--replay`` always works on a lean install.
"""

from __future__ import annotations

import argparse
import socket
import sys

from repro.experiments.dashboard.render import render_run
from repro.experiments.telemetry.aggregate import RunAggregator
from repro.experiments.telemetry.bus import read_events

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.dashboard",
        description="Render the telemetry stream of a campaign run.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--replay",
        metavar="PATH",
        help="render a finished JSON-lines telemetry log (--telemetry-log)",
    )
    source.add_argument(
        "--connect",
        type=int,
        metavar="PORT",
        help="tail a live telemetry socket (--telemetry-port) on localhost",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="telemetry socket host for --connect (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="force the plain-text renderer instead of the Textual TUI",
    )
    parser.add_argument(
        "--details",
        action="store_true",
        help="plain mode: include the per-job metric drill-downs",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="TUI refresh interval (default: 0.5)",
    )
    return parser


def _textual_available() -> bool:
    try:
        import textual  # noqa: F401
    except ModuleNotFoundError:
        return False
    return True


def _plain_replay(path: str, *, details: bool) -> int:
    aggregator = RunAggregator().replay(read_events(path))
    print(render_run(aggregator, details=details))
    return 0


def _plain_tail(host: str, port: int, *, details: bool) -> int:
    """Consume a live socket until the run ends, then print the final view."""
    aggregator = RunAggregator()
    with socket.create_connection((host, port)) as conn:
        stream = conn.makefile("rb")
        aggregator.replay(read_events(stream))
    print(render_run(aggregator, details=details))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    plain = args.plain
    if not plain and not _textual_available():
        print(
            "[textual is not installed (pip install -e .[dashboard]); "
            "falling back to --plain]",
            file=sys.stderr,
        )
        plain = True

    if plain:
        if args.replay is not None:
            return _plain_replay(args.replay, details=args.details)
        return _plain_tail(args.host, args.connect, details=args.details)

    from repro.experiments.dashboard.app import DashboardApp

    if args.replay is not None:
        app = DashboardApp(
            events=read_events(args.replay), interval=args.interval
        )
    else:
        app = DashboardApp(
            host=args.host, port=args.connect, interval=args.interval
        )
    app.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
