"""Live campaign dashboard: a TUI (or plain-text) view of the telemetry stream.

``python -m repro.experiments.dashboard`` renders the telemetry event stream
of a campaign run — either tailing a live socket published by the runner
(``--telemetry-port`` / ``--connect``) or replaying a finished JSON-lines log
(``--telemetry-log run.jsonl`` / ``--replay run.jsonl``):

* a summary header: campaign, executor, job-state counts, cache-hit rate,
  throughput, attached workers;
* a per-job table: state, attempts, worker, duration, kind;
* drill-down into one cell's metrics (for ``hardware-cost-cell`` jobs, the
  full :class:`~repro.attacks.lowering.LoweringReport` fields).

The rich interactive interface is a Textual application
(:mod:`~repro.experiments.dashboard.app`) and needs the optional
``[dashboard]`` extra (``pip install -e .[dashboard]``); without Textual the
CLI falls back to the plain-text renderer in
:mod:`~repro.experiments.dashboard.render`, which needs nothing beyond the
standard library and keeps ``--replay`` usable on lean installs.
"""

from repro.experiments.dashboard.render import (
    render_jobs_table,
    render_run,
    render_summary,
)

__all__ = ["render_run", "render_summary", "render_jobs_table"]
