"""§5.4 comparison — accuracy loss of fault sneaking vs the Liu et al. baselines.

The paper reports that, when misclassifying a single image, the fault
sneaking attack degrades MNIST accuracy by 0.8 points and CIFAR by 1.0 points,
whereas the fault injection attack of [16] loses 3.86 and 2.35 points in its
best case.  This driver runs all three attacks (fault sneaking ℓ0, GDA and
SBA) under the same S = 1 requirement and reports the modification size, the
attack success and the accuracy drop.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.evaluation import evaluate_attack_result
from repro.analysis.reporting import Table
from repro.attacks.baselines import (
    GradientDescentAttack,
    GradientDescentAttackConfig,
    SingleBiasAttack,
    SingleBiasAttackConfig,
)
from repro.attacks.fault_sneaking import FaultSneakingAttack
from repro.attacks.targets import make_attack_plan
from repro.experiments.common import (
    anchor_and_eval_split,
    attack_config_for,
    get_setting,
    get_trained_model,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run"]


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
) -> Table:
    """Reproduce the §5.4 accuracy-loss comparison."""
    setting = get_setting(scale)
    table = Table(
        title="Baseline comparison: accuracy loss when misclassifying one image (S=1)",
        columns=[
            "dataset",
            "attack",
            "l0",
            "l2",
            "success",
            "clean accuracy",
            "attacked accuracy",
            "accuracy drop (pts)",
        ],
    )

    for dataset in datasets:
        trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
        model = trained.model
        anchor_pool, test_set = anchor_and_eval_split(trained)
        clean_accuracy = model.evaluate(test_set.images, test_set.labels)
        num_images = min(setting.baseline_r, len(anchor_pool))
        plan = make_attack_plan(
            anchor_pool, num_targets=1, num_images=num_images, seed=seed + 17
        )
        target_image = plan.target_images[0]
        target_label = int(plan.target_labels[0])

        # Fault sneaking attack (the paper's method).
        fs_result = FaultSneakingAttack(model, attack_config_for(scale, norm="l0")).attack(plan)
        fs_eval = evaluate_attack_result(
            fs_result, test_set, clean_model=model, clean_accuracy=clean_accuracy
        )
        table.add_row(
            dataset,
            "fault sneaking (l0)",
            fs_eval.l0_norm,
            fs_eval.l2_norm,
            fs_eval.success_rate,
            clean_accuracy,
            fs_eval.attacked_test_accuracy,
            fs_eval.accuracy_drop_percent,
        )

        # GDA baseline: gradient descent + modification compression, no keep images.
        gda_config = GradientDescentAttackConfig(iterations=setting.attack_iterations)
        gda_result = GradientDescentAttack(model, gda_config).attack(plan)
        gda_model = gda_result.modified_model()
        gda_accuracy = gda_model.evaluate(test_set.images, test_set.labels)
        table.add_row(
            dataset,
            "GDA (Liu et al.)",
            gda_result.l0_norm,
            gda_result.l2_norm,
            gda_result.success_rate,
            clean_accuracy,
            gda_accuracy,
            100.0 * (clean_accuracy - gda_accuracy),
        )

        # SBA baseline: a single bias modification.
        sba = SingleBiasAttack(model, SingleBiasAttackConfig())
        sba_result = sba.attack(target_image, target_label)
        sba_model = sba_result.modified_model()
        sba_accuracy = sba_model.evaluate(test_set.images, test_set.labels)
        table.add_row(
            dataset,
            "SBA (Liu et al.)",
            sba_result.l0_norm,
            sba_result.l2_norm,
            float(sba_result.success),
            clean_accuracy,
            sba_accuracy,
            100.0 * (clean_accuracy - sba_accuracy),
        )

    table.add_note(
        "Paper reference: fault sneaking loses 0.8 pts (MNIST) / 1.0 pts (CIFAR); "
        "the fault injection attack of Liu et al. loses 3.86 / 2.35 pts in its best case."
    )
    table.add_note(
        "Expected shape: the fault sneaking attack retains more accuracy than both baselines."
    )
    return table
