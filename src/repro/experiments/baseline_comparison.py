"""§5.4 comparison — accuracy loss of fault sneaking vs the Liu et al. baselines.

The paper reports that, when misclassifying a single image, the fault
sneaking attack degrades MNIST accuracy by 0.8 points and CIFAR by 1.0 points,
whereas the fault injection attack of [16] loses 3.86 and 2.35 points in its
best case.  This driver runs all three attacks (fault sneaking ℓ0, GDA and
SBA) under the same S = 1 requirement and reports the modification size, the
attack success and the accuracy drop.
"""

from __future__ import annotations

from repro.analysis.evaluation import evaluate_attack_result
from repro.analysis.reporting import Table
from repro.attacks.targets import make_attack_plan
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    JobSpec,
    format_cell_int,
    register_job,
    run_experiment,
)
from repro.experiments.common import (
    S1_BASELINE_ATTACKS,
    anchor_and_eval_split,
    get_setting,
    get_trained_model,
    run_s1_attack,
    s1_num_images,
)
from repro.zoo.registry import ModelRegistry

__all__ = ["run", "build_campaign", "assemble"]


def _cell(dataset: str, scale: str, seed: int, attack: str, num_images: int) -> JobSpec:
    return JobSpec.make(
        "baseline-attack",
        dataset=dataset,
        scale=scale,
        seed=int(seed),
        attack=attack,
        num_images=int(num_images),
        plan_seed=int(seed + 17),
    )


@register_job("baseline-attack")
def _baseline_attack_job(
    *,
    registry: ModelRegistry | None = None,
    dataset: str,
    scale: str,
    seed: int,
    attack: str,
    num_images: int,
    plan_seed: int,
) -> dict:
    """Run one of the three S = 1 attacks and evaluate accuracy retention."""
    trained = get_trained_model(dataset, scale, registry=registry, seed=seed)
    model = trained.model
    anchor_pool, test_set = anchor_and_eval_split(trained)
    clean_accuracy = model.evaluate(test_set.images, test_set.labels)
    plan = make_attack_plan(anchor_pool, num_targets=1, num_images=num_images, seed=plan_seed)
    result, success = run_s1_attack(attack, model, plan, scale)

    if attack == "fault_sneaking":
        # The paper's method is scored through the full evaluation pipeline
        # (shared zero tolerance for the l0 count).
        evaluation = evaluate_attack_result(
            result, test_set, clean_model=model, clean_accuracy=clean_accuracy
        )
        l0, l2 = evaluation.l0_norm, evaluation.l2_norm
        success = evaluation.success_rate
        attacked = evaluation.attacked_test_accuracy
    else:
        l0, l2 = result.l0_norm, result.l2_norm
        attacked = result.modified_model().evaluate(test_set.images, test_set.labels)
    return {
        "l0": l0,
        "l2": l2,
        "success": success,
        "clean_accuracy": clean_accuracy,
        "attacked_accuracy": attacked,
    }


def build_campaign(
    scale: str = "ci",
    *,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
) -> Campaign:
    """Declare one job per (dataset, attack) cell of the §5.4 comparison."""
    setting = get_setting(scale)
    num_images = s1_num_images(setting)
    jobs = [
        _cell(dataset, scale, seed, attack, num_images)
        for dataset in datasets
        for attack, _ in S1_BASELINE_ATTACKS
    ]
    return Campaign(
        name="baseline_comparison",
        scale=scale,
        seed=seed,
        jobs=tuple(jobs),
        metadata={"datasets": tuple(datasets)},
    )


def assemble(campaign: Campaign, results: CampaignResult) -> Table:
    """Turn the per-attack metrics into the §5.4 comparison table."""
    setting = get_setting(campaign.scale)
    num_images = s1_num_images(setting)
    table = Table(
        title="Baseline comparison: accuracy loss when misclassifying one image (S=1)",
        columns=[
            "dataset",
            "attack",
            "l0",
            "l2",
            "success",
            "clean accuracy",
            "attacked accuracy",
            "accuracy drop (pts)",
        ],
    )

    for dataset in campaign.metadata["datasets"]:
        for attack, label in S1_BASELINE_ATTACKS:
            metrics = results.metrics_for(
                _cell(dataset, campaign.scale, campaign.seed, attack, num_images)
            )
            table.add_row(
                dataset,
                label,
                format_cell_int(metrics["l0"]),
                metrics["l2"],
                metrics["success"],
                metrics["clean_accuracy"],
                metrics["attacked_accuracy"],
                100.0 * (metrics["clean_accuracy"] - metrics["attacked_accuracy"]),
            )

    table.add_note(
        "Paper reference: fault sneaking loses 0.8 pts (MNIST) / 1.0 pts (CIFAR); "
        "the fault injection attack of Liu et al. loses 3.86 / 2.35 pts in its best case."
    )
    table.add_note(
        "Expected shape: the fault sneaking attack retains more accuracy than both baselines."
    )
    return table


def run(
    scale: str = "ci",
    *,
    registry: ModelRegistry | None = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist_like", "cifar_like"),
    jobs: int = 1,
    executor=None,
    artifact_dir=None,
) -> Table:
    """Reproduce the §5.4 accuracy-loss comparison."""
    return run_experiment(
        build_campaign,
        assemble,
        scale,
        registry=registry,
        seed=seed,
        jobs=jobs,
        executor=executor,
        artifact_dir=artifact_dir,
        datasets=datasets,
    )
