"""Fusing compatible campaign cells into one batched in-parent job.

A campaign grid is a list of *independent* cells, and the scalar path pays
the full per-cell overhead — model lookup, plan construction, one scalar
ADMM solve — for every one of them.  Many cells differ only in parameters
that a stacked tensor solve can carry as a *lane* (Table 4's S axis, the
Monte-Carlo plan-seed axis), so executing them one by one leaves large
batching gains on the table.

This module is the grouping half of that optimisation:

* :func:`register_fusion` — a job kind declares how its cells fuse: a
  ``group_key`` mapping a cell's parameters to a compatibility key (cells
  with equal keys may share one batched execution; ``None`` opts a cell
  out), and a ``run_batch`` function executing one group and returning one
  metric dictionary per cell.
* :func:`plan_fusion` — partition a pending job list into fusable groups
  and a remainder, preserving submission order.
* :func:`run_fused_group` — execute one group under the same seeding
  discipline as :func:`repro.experiments.campaign.execute_job` and split
  the result back into per-cell :class:`~repro.experiments.campaign.
  JobResult`s.  Per-cell artifact keys are untouched: a fused cell stores
  and reloads exactly like a scalar one, so fused and serial campaigns are
  interchangeable cell for cell.

The contract that makes fusion safe is *bit-identity*: ``run_batch`` must
produce, for every cell of the group, the same metrics the scalar job-kind
function would produce for that cell alone (the batched attack stack pins
this property down to the ULP — see ``tests/test_attacks_batched.py``).
Fusion is therefore purely an execution-plan rewrite; manifests, artifact
stores and tables cannot tell whether a cell ran fused or scalar.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

import numpy as np

from repro.experiments.campaign import JobResult, JobSpec
from repro.utils.errors import ConfigurationError
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed, seed_everything
from repro.zoo.registry import ModelRegistry

__all__ = [
    "FusionRule",
    "register_fusion",
    "fusion_kinds",
    "fusion_rule",
    "plan_fusion",
    "run_fused_group",
]

_LOGGER = get_logger("experiments.fusion")

# A run_batch function: receives the group's specs (>= 2, equal group keys)
# plus the model registry, returns one metric dict per spec, same order.
BatchRunner = Callable[..., "list[dict[str, float]]"]

# A group_key function: spec parameters -> compatibility key, or None to
# keep the cell on the scalar path.
GroupKey = Callable[[dict[str, Any]], Hashable | None]


@dataclass(frozen=True)
class FusionRule:
    """How one job kind groups and batch-executes compatible cells."""

    kind: str
    group_key: GroupKey
    run_batch: BatchRunner
    min_group: int = 2


_FUSION_RULES: dict[str, FusionRule] = {}


def register_fusion(
    kind: str, *, group_key: GroupKey, min_group: int = 2
) -> Callable[[BatchRunner], BatchRunner]:
    """Decorator registering the batched executor for a job kind.

    ``group_key`` receives a cell's parameter dictionary and returns the
    compatibility key — every parameter that must be *shared* for the cells
    to ride one stacked solve (victim model, configuration, anchor count)
    belongs in the key; parameters that become per-lane state (S, plan
    seed) do not.  Returning ``None`` opts the cell out of fusion.

    The decorated function receives ``(specs, *, registry)`` and must
    return one metric dictionary per spec, in spec order, each equal to
    what the scalar job-kind function returns for that cell.
    """
    if min_group < 2:
        raise ConfigurationError(f"min_group must be >= 2, got {min_group}")

    def decorator(fn: BatchRunner) -> BatchRunner:
        existing = _FUSION_RULES.get(kind)
        if existing is not None and existing.run_batch is not fn:
            raise ConfigurationError(f"fusion for job kind {kind!r} is already registered")
        _FUSION_RULES[kind] = FusionRule(
            kind=kind, group_key=group_key, run_batch=fn, min_group=min_group
        )
        return fn

    return decorator


def fusion_kinds() -> tuple[str, ...]:
    """Names of all job kinds with a registered fusion rule."""
    return tuple(sorted(_FUSION_RULES))


def fusion_rule(kind: str) -> FusionRule | None:
    """Return the fusion rule of a job kind, or ``None`` if it has none."""
    return _FUSION_RULES.get(kind)


def plan_fusion(
    specs: Iterable[JobSpec],
) -> tuple[list[list[JobSpec]], list[JobSpec]]:
    """Partition pending jobs into fusable groups and a scalar remainder.

    Cells group by ``(kind, group_key(params))``; groups smaller than the
    rule's ``min_group`` (and cells whose kind has no rule or whose key is
    ``None``) stay on the scalar path.  Order is preserved everywhere:
    groups appear in first-member submission order, members keep their
    submission order within the group, and the remainder keeps the original
    relative order — so a fused campaign visits cells in a deterministic
    order regardless of how the grid interleaves fusable and scalar cells.
    """
    grouped: dict[tuple[str, Hashable], list[JobSpec]] = {}
    scalar: list[tuple[int, JobSpec]] = []
    positions: dict[tuple[str, Hashable], int] = {}
    for position, spec in enumerate(specs):
        rule = _FUSION_RULES.get(spec.kind)
        key = rule.group_key(spec.param_dict()) if rule is not None else None
        if key is None:
            scalar.append((position, spec))
            continue
        group_id = (spec.kind, key)
        grouped.setdefault(group_id, []).append(spec)
        positions.setdefault(group_id, position)

    # Insertion order of ``grouped`` is first-member submission order.
    groups: list[list[JobSpec]] = []
    demoted: list[tuple[int, JobSpec]] = []
    for group_id, members in grouped.items():
        rule = _FUSION_RULES[group_id[0]]
        if len(members) >= rule.min_group:
            groups.append(members)
        else:
            # An undersized group keeps its first-seen position so the
            # remainder interleaves exactly as submitted.
            demoted.extend((positions[group_id], member) for member in members)
    remainder = [spec for _, spec in sorted(scalar + demoted, key=lambda item: item[0])]
    return groups, remainder


def run_fused_group(
    group: list[JobSpec], *, registry: ModelRegistry | None = None
) -> list[JobResult]:
    """Execute one fused group in the current process.

    Mirrors :func:`repro.experiments.campaign.execute_job`'s seeding
    discipline — the global generators are seeded deterministically from
    the group's member keys and restored afterwards — so stray global-RNG
    reads behave identically run to run.  The group's wall time is split
    evenly across its cells: per-cell ``elapsed`` stays a meaningful
    throughput number while summing back to the group's true cost.
    """
    if not group:
        raise ConfigurationError("run_fused_group needs at least one spec")
    kinds = {spec.kind for spec in group}
    if len(kinds) != 1:
        raise ConfigurationError(f"fused group mixes job kinds: {sorted(kinds)}")
    rule = _FUSION_RULES.get(group[0].kind)
    if rule is None:
        raise ConfigurationError(f"job kind {group[0].kind!r} has no fusion rule")

    stdlib_state = random.getstate()
    numpy_state = np.random.get_state()
    try:
        seed_everything(derive_seed("fused", rule.kind, tuple(spec.key for spec in group)))
        started = time.perf_counter()
        metrics_list = rule.run_batch(group, registry=registry)
        elapsed = time.perf_counter() - started
    finally:
        random.setstate(stdlib_state)
        np.random.set_state(numpy_state)

    if len(metrics_list) != len(group):
        raise ConfigurationError(
            f"fusion for {rule.kind!r} returned {len(metrics_list)} results "
            f"for {len(group)} cells"
        )
    per_cell = elapsed / len(group)
    _LOGGER.info(
        "fused %d %s cells in %.2fs (%.2fs/cell)", len(group), rule.kind, elapsed, per_cell
    )
    return [
        JobResult(
            key=spec.key,
            kind=spec.kind,
            metrics={name: float(value) for name, value in metrics.items()},
            elapsed=per_cell,
        )
        for spec, metrics in zip(group, metrics_list)
    ]
