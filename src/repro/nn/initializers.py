"""Weight initialisation schemes.

Each initializer takes a shape, fan-in/fan-out information and a numpy
Generator and returns a float64 array.  Dense and Conv2D layers pick a
sensible default (He for ReLU-style networks) but accept any callable with
the same signature.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "he_uniform", "normal_init", "zeros_init"]


def zeros_init(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    del fan_in, fan_out, rng
    return np.zeros(shape, dtype=np.float64)


def normal_init(
    shape, fan_in: int, fan_out: int, rng: np.random.Generator, *, std: float = 0.05
) -> np.ndarray:
    """Gaussian initialisation with a fixed standard deviation."""
    del fan_in, fan_out
    return rng.normal(0.0, std, size=shape)


def glorot_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot / Xavier uniform initialisation, suited to tanh/sigmoid layers."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation, suited to ReLU layers."""
    del fan_out
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation, suited to ReLU layers."""
    del fan_out
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)
