"""Loss functions.

Each loss exposes ``value(outputs, targets)`` and
``gradient(outputs, targets)`` where ``outputs`` are whatever the model's
final layer produced (logits for :class:`CrossEntropyLoss` and
:class:`HingeLogitLoss`).
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ShapeError

__all__ = ["Loss", "CrossEntropyLoss", "MSELoss", "HingeLogitLoss", "softmax", "log_softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def _check_labels(outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
    targets = np.asarray(targets)
    if targets.shape != outputs.shape[:-1]:
        raise ShapeError(
            f"targets must be an integer label array of shape {outputs.shape[:-1]} "
            f"(outputs without the class axis), got shape {targets.shape}"
        )
    if targets.min() < 0 or targets.max() >= outputs.shape[-1]:
        raise ValueError(
            f"label values must lie in [0, {outputs.shape[-1] - 1}], "
            f"got range [{targets.min()}, {targets.max()}]"
        )
    return targets.astype(np.int64)


class Loss:
    """Base class for losses operating on model outputs and integer labels."""

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        """Return the mean loss over the batch."""
        raise NotImplementedError

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Return the gradient of the mean loss w.r.t. ``outputs``."""
        raise NotImplementedError

    def __call__(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        return self.value(outputs, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross entropy evaluated on logits with integer class labels."""

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        targets = _check_labels(outputs, targets)
        log_probs = log_softmax(outputs)
        picked = np.take_along_axis(log_probs, targets[..., None], axis=-1)[..., 0]
        return float(-picked.mean())

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = _check_labels(outputs, targets)
        grad = softmax(outputs)
        idx = targets[..., None]
        np.put_along_axis(grad, idx, np.take_along_axis(grad, idx, axis=-1) - 1.0, axis=-1)
        return grad / targets.size


class MSELoss(Loss):
    """Mean squared error against one-hot targets (or raw regression targets)."""

    def _expand(self, outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim == outputs.ndim - 1:
            one_hot = np.zeros_like(outputs)
            labels = _check_labels(outputs, targets)
            np.put_along_axis(one_hot, labels[..., None], 1.0, axis=-1)
            return one_hot
        if targets.shape != outputs.shape:
            raise ShapeError(
                f"MSE targets shape {targets.shape} does not match outputs {outputs.shape}"
            )
        return targets.astype(np.float64)

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        expanded = self._expand(outputs, targets)
        return float(np.mean((outputs - expanded) ** 2))

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        expanded = self._expand(outputs, targets)
        return 2.0 * (outputs - expanded) / outputs.size


class HingeLogitLoss(Loss):
    """Carlini–Wagner style margin loss on logits (paper eq. (3)).

    ``value`` is the mean over the batch of
    ``max(max_{j != t} Z_j - Z_t + kappa, 0)`` where ``t`` is the *desired*
    label of each sample.  It reaches zero exactly when every sample is
    classified as its desired label with margin at least ``kappa``.

    This is the per-image objective used by the fault-sneaking attack; the
    attack code in :mod:`repro.attacks.objective` builds on the same kernel
    but with per-image weights and target/keep semantics.
    """

    def __init__(self, kappa: float = 0.0):
        if kappa < 0:
            raise ValueError(f"kappa must be non-negative, got {kappa}")
        self.kappa = float(kappa)

    def per_sample(self, outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Return the un-reduced hinge value for every sample."""
        targets = _check_labels(outputs, targets)
        idx = targets[..., None]
        target_logit = np.take_along_axis(outputs, idx, axis=-1)[..., 0]
        masked = outputs.copy()
        np.put_along_axis(masked, idx, -np.inf, axis=-1)
        best_other = masked.max(axis=-1)
        return np.maximum(best_other - target_logit + self.kappa, 0.0)

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        return float(self.per_sample(outputs, targets).mean())

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = _check_labels(outputs, targets)
        idx = targets[..., None]
        target_logit = np.take_along_axis(outputs, idx, axis=-1)[..., 0]
        masked = outputs.copy()
        np.put_along_axis(masked, idx, -np.inf, axis=-1)
        best_other_idx = masked.argmax(axis=-1)
        best_other = np.take_along_axis(masked, best_other_idx[..., None], axis=-1)[..., 0]
        active = (best_other - target_logit + self.kappa) > 0

        # The masked argmax never lands on the target column, so writing the
        # active indicator at best_other_idx and subtracting it at the target
        # reproduces the classic +/-1 sparse gradient exactly.
        grad = np.zeros_like(outputs)
        indicator = active.astype(outputs.dtype)[..., None]
        np.put_along_axis(grad, best_other_idx[..., None], indicator, axis=-1)
        np.put_along_axis(grad, idx, np.take_along_axis(grad, idx, axis=-1) - indicator, axis=-1)
        return grad / targets.size
