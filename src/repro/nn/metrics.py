"""Classification metrics used throughout the evaluation harness."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ShapeError

__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix", "per_class_accuracy"]


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ShapeError(
            f"y_true and y_pred must be 1-D arrays of equal length, got "
            f"{y_true.shape} and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ShapeError("metrics require at least one sample")
    return y_true.astype(np.int64), y_pred.astype(np.int64)


def accuracy(y_true, y_pred) -> float:
    """Fraction of predictions equal to the true labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def top_k_accuracy(y_true, scores, k: int = 5) -> float:
    """Fraction of samples whose true label is among the top-``k`` scores."""
    y_true = np.asarray(y_true).astype(np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[0] != y_true.shape[0]:
        raise ShapeError(
            f"scores must be (n_samples, n_classes) matching y_true, got {scores.shape}"
        )
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k must be in [1, {scores.shape[1]}], got {k}")
    top_k = np.argsort(-scores, axis=1)[:, :k]
    hits = (top_k == y_true[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(y_true, y_pred, num_classes: int | None = None) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix.

    Rows are true labels, columns are predictions.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def per_class_accuracy(y_true, y_pred, num_classes: int | None = None) -> np.ndarray:
    """Return per-class recall; classes absent from ``y_true`` get NaN."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.diag(matrix) / totals
    result[totals == 0] = np.nan
    return result
