"""First-order optimizers used to train the substrate networks.

An optimizer is bound to a model via :meth:`Optimizer.register` and then
updates every trainable parameter in place from the gradients the layers
accumulated during backpropagation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp"]


class Optimizer:
    """Base optimizer maintaining per-parameter state keyed by (layer, name)."""

    def __init__(self, learning_rate: float = 0.01, *, weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self._layers: list = []
        self._state: dict[tuple[int, str], dict[str, np.ndarray]] = {}
        self.iterations = 0

    def register(self, model) -> "Optimizer":
        """Bind the optimizer to a model's trainable layers."""
        self._layers = [layer for layer in model.layers if layer.params]
        self._state.clear()
        self.iterations = 0
        return self

    def _apply(self, param: np.ndarray, grad: np.ndarray, state: dict) -> None:
        raise NotImplementedError

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the layers."""
        if not self._layers:
            raise RuntimeError("optimizer.step() called before register(model)")
        self.iterations += 1
        for layer_index, layer in enumerate(self._layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                if self.weight_decay and name != "b":
                    grad = grad + self.weight_decay * param
                state = self._state.setdefault((layer_index, name), {})
                self._apply(param, grad, state)

    def zero_grad(self) -> None:
        """Reset gradients on every registered layer."""
        for layer in self._layers:
            layer.zero_grads()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)

    def _apply(self, param: np.ndarray, grad: np.ndarray, state: dict) -> None:
        if self.momentum:
            velocity = state.setdefault("velocity", np.zeros_like(param))
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity
        else:
            param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate, weight_decay=weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def _apply(self, param: np.ndarray, grad: np.ndarray, state: dict) -> None:
        m = state.setdefault("m", np.zeros_like(param))
        v = state.setdefault("v", np.zeros_like(param))
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad**2
        m_hat = m / (1 - self.beta1**self.iterations)
        v_hat = v / (1 - self.beta2**self.iterations)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp optimizer with exponentially decayed squared-gradient average."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        *,
        decay: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate, weight_decay=weight_decay)
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError(f"decay must be in [0, 1), got {decay}")
        self.decay = float(decay)
        self.eps = float(eps)

    def _apply(self, param: np.ndarray, grad: np.ndarray, state: dict) -> None:
        avg = state.setdefault("avg", np.zeros_like(param))
        avg *= self.decay
        avg += (1 - self.decay) * grad**2
        param -= self.learning_rate * grad / (np.sqrt(avg) + self.eps)
