"""Neural network layers with explicit forward/backward passes.

Conventions
-----------
* Images use the NHWC layout ``(batch, height, width, channels)``; dense
  features are 2-D ``(batch, features)``.
* Every layer caches whatever it needs for backpropagation during
  :meth:`Layer.forward` and exposes parameter gradients through
  :attr:`Layer.grads` after :meth:`Layer.backward`.
* Parameters are ordinary numpy arrays accessible (and writable) through
  :attr:`Layer.params`; the fault-sneaking attack mutates them in place.
* Each layer type registers itself by name so that models can be rebuilt from
  a configuration dictionary (see :mod:`repro.nn.serialization`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import initializers
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.utils.errors import ConfigurationError, ShapeError
from repro.utils.rng import RandomState

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm1D",
    "layer_from_config",
]

_LAYER_REGISTRY: dict[str, type["Layer"]] = {}


def _register(cls: type["Layer"]) -> type["Layer"]:
    _LAYER_REGISTRY[cls.__name__] = cls
    return cls


def layer_from_config(config: dict) -> "Layer":
    """Rebuild a layer instance from its ``get_config`` dictionary."""
    config = dict(config)
    kind = config.pop("kind", None)
    if kind not in _LAYER_REGISTRY:
        raise ConfigurationError(f"unknown layer kind {kind!r}")
    return _LAYER_REGISTRY[kind](**config)


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward` and populate
    ``self.params`` / ``self.grads`` with identically keyed dictionaries of
    arrays when they hold trainable parameters.
    """

    def __init__(self, name: str | None = None):
        self.name = name or self.__class__.__name__.lower()
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        # Number of stacked solve lanes when the model runs in stacked mode
        # (a leading lane axis on activations and, for attacked layers, on
        # parameters); ``None`` in ordinary scalar mode.  Set and cleared by
        # :class:`repro.attacks.parameter_view.StackedParameterView`.
        self.lanes: int | None = None

    # -- interface -----------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def get_config(self) -> dict:
        """Return a JSON-serialisable description sufficient to rebuild the layer."""
        return {"kind": self.__class__.__name__, "name": self.name}

    # -- conveniences --------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Total number of trainable scalars held by the layer."""
        return int(sum(p.size for p in self.params.values()))

    def zero_grads(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r}, n_params={self.n_params})"


@_register
class Dense(Layer):
    """Fully connected layer computing ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    use_bias:
        Whether to include the additive bias term.
    weight_init:
        Initializer name (``"he_normal"``, ``"he_uniform"``, ``"glorot_uniform"``,
        ``"normal"``, ``"zeros"``) or a callable with the initializer signature.
    seed:
        Seed for parameter initialisation.
    """

    _INITS: dict[str, Callable] = {
        "he_normal": initializers.he_normal,
        "he_uniform": initializers.he_uniform,
        "glorot_uniform": initializers.glorot_uniform,
        "normal": initializers.normal_init,
        "zeros": initializers.zeros_init,
    }

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        seed: int | None = None,
        name: str | None = None,
    ):
        super().__init__(name=name)
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Dense dimensions must be positive, got {in_features}x{out_features}"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self.weight_init = weight_init
        self.seed = seed

        rng = RandomState(seed)
        init = self._resolve_init(weight_init)
        self.params["W"] = init(
            (self.in_features, self.out_features), self.in_features, self.out_features, rng
        )
        if self.use_bias:
            self.params["b"] = np.zeros(self.out_features, dtype=np.float64)
        self.zero_grads()
        self._last_input: np.ndarray | None = None

    @classmethod
    def _resolve_init(cls, weight_init) -> Callable:
        if callable(weight_init):
            return weight_init
        try:
            return cls._INITS[weight_init]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown weight_init {weight_init!r}; expected one of {sorted(cls._INITS)}"
            ) from exc

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim == 3 and x.shape[2] == self.in_features:
            # Stacked mode: x is (lanes, N, in).  W is either per-lane
            # (lanes, in, out) or shared (in, out); matmul broadcasts both,
            # and each lane slice is the exact scalar GEMM.
            self._last_input = x
            out = np.matmul(x, self.params["W"])
            if self.use_bias:
                b = self.params["b"]
                out = out + (b[:, None, :] if b.ndim == 2 else b)
            return out
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense layer {self.name!r} expects input of shape (N, {self.in_features}), "
                f"got {x.shape}"
            )
        self._last_input = x
        out = x @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError("backward called before forward")
        x = self._last_input
        w = self.params["W"]
        if x.ndim == 3:
            if w.ndim == 3:
                self.grads["W"] = np.matmul(x.transpose(0, 2, 1), grad_output)
            else:
                self.grads["W"] = np.tensordot(x, grad_output, axes=([0, 1], [0, 1]))
            if self.use_bias:
                per_lane = self.params["b"].ndim == 2
                self.grads["b"] = grad_output.sum(axis=1 if per_lane else (0, 1))
            return np.matmul(grad_output, w.transpose(0, 2, 1) if w.ndim == 3 else w.T)
        self.grads["W"] = x.T @ grad_output
        if self.use_bias:
            self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ w.T

    def get_config(self) -> dict:
        return {
            "kind": "Dense",
            "name": self.name,
            "in_features": self.in_features,
            "out_features": self.out_features,
            "use_bias": self.use_bias,
            "weight_init": self.weight_init if isinstance(self.weight_init, str) else "he_normal",
            "seed": self.seed,
        }


@_register
class Conv2D(Layer):
    """2-D convolution over NHWC inputs with square kernels.

    The weight tensor has shape ``(kernel, kernel, in_channels, out_channels)``
    and the forward pass is computed via im2col + matrix multiplication.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        seed: int | None = None,
        name: str | None = None,
    ):
        super().__init__(name=name)
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ConfigurationError("Conv2D dimensions must be positive (padding >= 0)")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(use_bias)
        self.weight_init = weight_init
        self.seed = seed

        rng = RandomState(seed)
        init = Dense._resolve_init(weight_init)
        fan_in = kernel_size * kernel_size * in_channels
        fan_out = kernel_size * kernel_size * out_channels
        self.params["W"] = init(
            (kernel_size, kernel_size, in_channels, out_channels), fan_in, fan_out, rng
        )
        if self.use_bias:
            self.params["b"] = np.zeros(out_channels, dtype=np.float64)
        self.zero_grads()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim == 5 and x.shape[4] == self.in_channels:
            # Stacked mode: x is (lanes, N, H, W, C).  One im2col over the
            # folded (lanes*N) batch (a pure per-sample gather), then a
            # per-lane GEMM whose M dimension (N*oh*ow) matches the scalar
            # path exactly, so each lane is bit-identical to a scalar solve.
            lanes, n = x.shape[0], x.shape[1]
            folded = x.reshape(lanes * n, *x.shape[2:])
            cols, (out_h, out_w) = im2col(folded, self.kernel_size, self.stride, self.padding)
            k = cols.shape[1]
            w = self.params["W"]
            if w.ndim == 5:
                w_mat = w.reshape(lanes, k, self.out_channels)
            else:
                w_mat = w.reshape(k, self.out_channels)
            out = np.matmul(cols.reshape(lanes, n * out_h * out_w, k), w_mat)
            if self.use_bias:
                b = self.params["b"]
                out = out + (b[:, None, :] if b.ndim == 2 else b)
            self._cache = (x.shape, cols)
            return out.reshape(lanes, n, out_h, out_w, self.out_channels)
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ShapeError(
                f"Conv2D layer {self.name!r} expects NHWC input with {self.in_channels} "
                f"channels, got shape {x.shape}"
            )
        n = x.shape[0]
        cols, (out_h, out_w) = im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.params["W"].reshape(-1, self.out_channels)
        out = cols @ w_mat
        if self.use_bias:
            out = out + self.params["b"]
        out = out.reshape(n, out_h, out_w, self.out_channels)
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, cols = self._cache
        w = self.params["W"]
        if grad_output.ndim == 5:
            lanes, n, out_h, out_w, _ = grad_output.shape
            k = cols.shape[1]
            cols3 = cols.reshape(lanes, n * out_h * out_w, k)
            grad3 = grad_output.reshape(lanes, n * out_h * out_w, self.out_channels)
            if w.ndim == 5:
                self.grads["W"] = np.matmul(cols3.transpose(0, 2, 1), grad3).reshape(w.shape)
                w_mat = w.reshape(lanes, k, self.out_channels)
                grad_cols = np.matmul(grad3, w_mat.transpose(0, 2, 1))
            else:
                self.grads["W"] = np.tensordot(
                    cols3, grad3, axes=([0, 1], [0, 1])
                ).reshape(w.shape)
                grad_cols = np.matmul(grad3, w.reshape(k, self.out_channels).T)
            if self.use_bias:
                per_lane = self.params["b"].ndim == 2
                self.grads["b"] = grad3.sum(axis=1 if per_lane else (0, 1))
            folded = col2im(
                grad_cols.reshape(lanes * n * out_h * out_w, k),
                (lanes * n, *input_shape[2:]),
                self.kernel_size,
                self.stride,
                self.padding,
            )
            return folded.reshape(input_shape)
        n, out_h, out_w, _ = grad_output.shape
        grad_mat = grad_output.reshape(n * out_h * out_w, self.out_channels)

        self.grads["W"] = (cols.T @ grad_mat).reshape(w.shape)
        if self.use_bias:
            self.grads["b"] = grad_mat.sum(axis=0)

        w_mat = w.reshape(-1, self.out_channels)
        grad_cols = grad_mat @ w_mat.T
        return col2im(grad_cols, input_shape, self.kernel_size, self.stride, self.padding)

    def get_config(self) -> dict:
        return {
            "kind": "Conv2D",
            "name": self.name,
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding,
            "use_bias": self.use_bias,
            "weight_init": self.weight_init if isinstance(self.weight_init, str) else "he_normal",
            "seed": self.seed,
        }


class _Pool2D(Layer):
    """Shared plumbing for spatial pooling layers."""

    def __init__(self, pool_size: int = 2, *, stride: int | None = None, name: str | None = None):
        super().__init__(name=name)
        if pool_size <= 0:
            raise ConfigurationError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)
        self._cache: tuple | None = None

    def _fold_lanes(self, array: np.ndarray, op) -> np.ndarray:
        """Run a scalar forward/backward over (lanes*N, ...) and restack.

        Pooling is a pure per-sample operation, so folding the lane axis into
        the batch axis is bit-identical to pooling each lane separately.
        """
        lanes, n = array.shape[:2]
        out = op(array.reshape(lanes * n, *array.shape[2:]))
        return out.reshape(lanes, n, *out.shape[1:])

    def _patches(self, x: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
        n, h, w, c = x.shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        # Move channels in front of the patch axis so pooling reduces axis -1.
        cols, _ = im2col(x, self.pool_size, self.stride, 0)
        cols = cols.reshape(n * out_h * out_w, self.pool_size * self.pool_size, c)
        cols = cols.transpose(0, 2, 1).reshape(n * out_h * out_w * c, -1)
        return cols, (out_h, out_w)

    def get_config(self) -> dict:
        return {
            "kind": self.__class__.__name__,
            "name": self.name,
            "pool_size": self.pool_size,
            "stride": self.stride,
        }


@_register
class MaxPool2D(_Pool2D):
    """Max pooling over non-overlapping (or strided) square windows."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim == 5:
            return self._fold_lanes(x, self.forward)
        if x.ndim != 4:
            raise ShapeError(f"MaxPool2D expects NHWC input, got shape {x.shape}")
        n, h, w, c = x.shape
        cols, (out_h, out_w) = self._patches(x)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = (x.shape, argmax, (out_h, out_w))
        return out.reshape(n, out_h, out_w, c)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if grad_output.ndim == 5:
            return self._fold_lanes(grad_output, self.backward)
        input_shape, argmax, (out_h, out_w) = self._cache
        n, h, w, c = input_shape
        grad_flat = grad_output.reshape(-1)

        grad_cols = np.zeros(
            (grad_flat.size, self.pool_size * self.pool_size), dtype=grad_output.dtype
        )
        grad_cols[np.arange(grad_flat.size), argmax] = grad_flat
        # Undo the channel transpose applied in _patches, then col2im back.
        grad_cols = grad_cols.reshape(n * out_h * out_w, c, self.pool_size * self.pool_size)
        grad_cols = grad_cols.transpose(0, 2, 1).reshape(n * out_h * out_w, -1)
        return col2im(grad_cols, input_shape, self.pool_size, self.stride, 0)


@_register
class AvgPool2D(_Pool2D):
    """Average pooling over square windows."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        if x.ndim == 5:
            return self._fold_lanes(x, self.forward)
        if x.ndim != 4:
            raise ShapeError(f"AvgPool2D expects NHWC input, got shape {x.shape}")
        n, h, w, c = x.shape
        cols, (out_h, out_w) = self._patches(x)
        out = cols.mean(axis=1)
        self._cache = (x.shape, (out_h, out_w))
        return out.reshape(n, out_h, out_w, c)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if grad_output.ndim == 5:
            return self._fold_lanes(grad_output, self.backward)
        input_shape, (out_h, out_w) = self._cache
        n, h, w, c = input_shape
        window = self.pool_size * self.pool_size
        grad_flat = grad_output.reshape(-1) / window
        grad_cols = np.repeat(grad_flat[:, None], window, axis=1)
        grad_cols = grad_cols.reshape(n * out_h * out_w, c, window)
        grad_cols = grad_cols.transpose(0, 2, 1).reshape(n * out_h * out_w, -1)
        return col2im(grad_cols, input_shape, self.pool_size, self.stride, 0)


@_register
class Flatten(Layer):
    """Flatten all non-batch dimensions into a feature vector."""

    def __init__(self, name: str | None = None):
        super().__init__(name=name)
        self._input_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._input_shape = x.shape
        if self.lanes is not None and x.ndim > 2 and x.shape[0] == self.lanes:
            # Stacked mode: keep the lane axis, flatten per-sample features.
            return x.reshape(x.shape[0], x.shape[1], -1)
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


@_register
class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self, name: str | None = None):
        super().__init__(name=name)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


@_register
class LeakyReLU(Layer):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, alpha: float = 0.01, name: str | None = None):
        super().__init__(name=name)
        if alpha < 0:
            raise ConfigurationError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._input = x
        return np.where(x > 0, x, self.alpha * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        return grad_output * np.where(self._input > 0, 1.0, self.alpha)

    def get_config(self) -> dict:
        return {"kind": "LeakyReLU", "name": self.name, "alpha": self.alpha}


@_register
class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self, name: str | None = None):
        super().__init__(name=name)
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        out = np.empty_like(x, dtype=np.float64)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


@_register
class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self, name: str | None = None):
        super().__init__(name=name)
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


@_register
class Softmax(Layer):
    """Softmax layer producing a probability distribution over classes.

    The fault-sneaking objective works on *logits*, i.e. the input to this
    layer; :class:`repro.nn.model.Sequential` therefore exposes
    :meth:`~repro.nn.model.Sequential.logits` that stops before the softmax.
    """

    def __init__(self, name: str | None = None):
        super().__init__(name=name)
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=-1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        p = self._output
        dot = np.sum(grad_output * p, axis=-1, keepdims=True)
        return p * (grad_output - dot)


@_register
class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float = 0.5, *, seed: int | None = None, name: str | None = None):
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.seed = seed
        self._rng = RandomState(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def get_config(self) -> dict:
        return {"kind": "Dropout", "name": self.name, "rate": self.rate, "seed": self.seed}


@_register
class BatchNorm1D(Layer):
    """Batch normalisation over 2-D ``(batch, features)`` inputs."""

    def __init__(
        self,
        num_features: int,
        *,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str | None = None,
    ):
        super().__init__(name=name)
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.params["gamma"] = np.ones(num_features, dtype=np.float64)
        self.params["beta"] = np.zeros(num_features, dtype=np.float64)
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self.zero_grads()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim == 3 and x.shape[2] == self.num_features:
            # Stacked inference: normalise each lane with the shared running
            # statistics (stacked training is not supported — the attack
            # only ever runs inference passes).
            if training:
                raise ShapeError("BatchNorm1D does not support training on stacked inputs")
            x_hat = (x - self.running_mean) / np.sqrt(self.running_var + self.eps)
            self._cache = (x_hat, self.running_var)
            gamma, beta = self.params["gamma"], self.params["beta"]
            if gamma.ndim == 2:
                return gamma[:, None, :] * x_hat + beta[:, None, :]
            return gamma * x_hat + beta
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1D expects input of shape (N, {self.num_features}), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        x_hat = (x - mean) / np.sqrt(var + self.eps)
        self._cache = (x_hat, var)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, var = self._cache
        gamma = self.params["gamma"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        if grad_output.ndim == 3:
            n = grad_output.shape[1]
            per_lane = gamma.ndim == 2
            axis = 1 if per_lane else (0, 1)
            self.grads["gamma"] = np.sum(grad_output * x_hat, axis=axis)
            self.grads["beta"] = grad_output.sum(axis=axis)
            dx_hat = grad_output * (gamma[:, None, :] if per_lane else gamma)
            return (
                inv_std
                / n
                * (
                    n * dx_hat
                    - dx_hat.sum(axis=1, keepdims=True)
                    - x_hat * np.sum(dx_hat * x_hat, axis=1, keepdims=True)
                )
            )
        n = grad_output.shape[0]
        self.grads["gamma"] = np.sum(grad_output * x_hat, axis=0)
        self.grads["beta"] = grad_output.sum(axis=0)
        dx_hat = grad_output * gamma
        return (
            inv_std
            / n
            * (n * dx_hat - dx_hat.sum(axis=0) - x_hat * np.sum(dx_hat * x_hat, axis=0))
        )

    def get_config(self) -> dict:
        return {
            "kind": "BatchNorm1D",
            "name": self.name,
            "num_features": self.num_features,
            "momentum": self.momentum,
            "eps": self.eps,
        }
