"""Parameter quantisation helpers.

The paper's threat model allows the adversary to set a parameter to any value
representable in the deployed arithmetic format.  This module models those
formats (float32, float16 and signed fixed-point) so the hardware substrate
can (a) round an attack's continuous modification to representable values and
(b) reason about the bit patterns that must be written into memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ConfigurationError

__all__ = ["QuantizationSpec", "STORAGE_FORMATS", "storage_spec", "quantize", "dequantize"]

_FLOAT_FORMATS = {"float32": np.float32, "float16": np.float16}

# Named deployment storage formats understood by :func:`storage_spec`.  The
# experiment drivers sweep these names; "int8" is the signed 8-bit fixed-point
# format used by integer inference deployments (Q1.6 by default: range ±2 with
# 1/64 resolution, which covers the benchmark models' FC-layer parameters).
STORAGE_FORMATS = ("float32", "float16", "int8")

_INT8_DEFAULT_FRAC_BITS = 6


@dataclass(frozen=True)
class QuantizationSpec:
    """Description of a storage format for DNN parameters.

    Parameters
    ----------
    kind:
        ``"float32"``, ``"float16"`` or ``"fixed"``.
    total_bits:
        Word width for the fixed-point format (ignored for floats).
    frac_bits:
        Number of fractional bits for the fixed-point format.
    """

    kind: str = "float32"
    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self):
        if self.kind not in (*_FLOAT_FORMATS, "fixed"):
            raise ConfigurationError(
                f"unknown quantization kind {self.kind!r}; expected float32, float16 or fixed"
            )
        if self.kind == "fixed":
            if self.total_bits not in (8, 16, 32):
                raise ConfigurationError(
                    f"fixed-point width must be 8/16/32, got {self.total_bits}"
                )
            if not 0 <= self.frac_bits < self.total_bits:
                raise ConfigurationError(
                    f"frac_bits must be in [0, {self.total_bits}), got {self.frac_bits}"
                )

    @property
    def bits_per_value(self) -> int:
        """Number of storage bits for a single parameter."""
        if self.kind == "float32":
            return 32
        if self.kind == "float16":
            return 16
        return self.total_bits

    @property
    def scale(self) -> float:
        """Fixed-point scale factor (values are stored as ``round(x * scale)``)."""
        if self.kind != "fixed":
            raise ConfigurationError("scale is only defined for the fixed-point format")
        return float(2**self.frac_bits)

    def value_range(self) -> tuple[float, float]:
        """Return the (min, max) representable value."""
        if self.kind in _FLOAT_FORMATS:
            info = np.finfo(_FLOAT_FORMATS[self.kind])
            return float(-info.max), float(info.max)
        half = 2 ** (self.total_bits - 1)
        return (-half / self.scale, (half - 1) / self.scale)

    def storage_dtype(self) -> np.dtype:
        """Return the numpy dtype used to hold raw encoded words."""
        if self.kind == "float32":
            return np.dtype(np.uint32)
        if self.kind == "float16":
            return np.dtype(np.uint16)
        return np.dtype({8: np.uint8, 16: np.uint16, 32: np.uint32}[self.total_bits])

    def describe(self) -> str:
        """Short human-readable format name used in reports."""
        if self.kind in _FLOAT_FORMATS:
            return self.kind
        return f"int{self.total_bits} (q{self.frac_bits})"


def storage_spec(
    fmt: "str | QuantizationSpec", *, frac_bits: int = _INT8_DEFAULT_FRAC_BITS
) -> QuantizationSpec:
    """Resolve a deployment storage-format name into a :class:`QuantizationSpec`.

    Accepts the names in :data:`STORAGE_FORMATS` (``"int8"`` maps to signed
    8-bit fixed point with ``frac_bits`` fractional bits) or an existing spec,
    which is returned unchanged.
    """
    if isinstance(fmt, QuantizationSpec):
        return fmt
    if fmt in _FLOAT_FORMATS:
        return QuantizationSpec(fmt)
    if fmt == "int8":
        return QuantizationSpec("fixed", total_bits=8, frac_bits=frac_bits)
    raise ConfigurationError(
        f"unknown storage format {fmt!r}; expected one of {STORAGE_FORMATS} "
        "or a QuantizationSpec"
    )


def quantize(values: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Encode float parameters as raw storage words for ``spec``."""
    values = np.asarray(values, dtype=np.float64)
    if spec.kind in _FLOAT_FORMATS:
        as_float = values.astype(_FLOAT_FORMATS[spec.kind])
        return as_float.view(spec.storage_dtype()).copy()
    low, high = spec.value_range()
    clipped = np.clip(values, low, high)
    ints = np.round(clipped * spec.scale).astype(np.int64)
    half = 2 ** (spec.total_bits - 1)
    ints = np.clip(ints, -half, half - 1)
    # Two's complement encoding into an unsigned word.
    unsigned = np.where(ints < 0, ints + 2**spec.total_bits, ints)
    return unsigned.astype(spec.storage_dtype())


def dequantize(words: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Decode raw storage words back to float64 parameter values."""
    words = np.asarray(words)
    if spec.kind in _FLOAT_FORMATS:
        return words.view(_FLOAT_FORMATS[spec.kind]).astype(np.float64)
    ints = words.astype(np.int64)
    half = 2 ** (spec.total_bits - 1)
    ints = np.where(ints >= half, ints - 2**spec.total_bits, ints)
    return ints.astype(np.float64) / spec.scale
