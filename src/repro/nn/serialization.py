"""Model persistence.

A model is stored as a numpy ``.npz`` archive containing a JSON architecture
description plus one array per parameter (and per BatchNorm running
statistic).  The same array-dictionary form is used by the in-process model
registry so that models can round-trip through :class:`repro.utils.DiskCache`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import BatchNorm1D
from repro.nn.model import Sequential
from repro.utils.errors import ConfigurationError

__all__ = ["model_to_arrays", "model_from_arrays", "save_model", "load_model"]

_CONFIG_KEY = "__architecture_json__"


def model_to_arrays(model: Sequential) -> dict[str, np.ndarray]:
    """Flatten a model (architecture + weights) to a dict of numpy arrays."""
    arrays: dict[str, np.ndarray] = {
        # sort_keys keeps the stored bytes independent of dict construction
        # order, so archives of identical configs are themselves identical.
        _CONFIG_KEY: np.frombuffer(
            json.dumps(model.get_config(), sort_keys=True).encode("utf-8"),
            dtype=np.uint8,
        ).copy()
    }
    for layer_name, param_name, value in model.named_parameters():
        arrays[f"param/{layer_name}/{param_name}"] = value.copy()
    for layer in model.layers:
        if isinstance(layer, BatchNorm1D):
            arrays[f"running/{layer.name}/mean"] = layer.running_mean.copy()
            arrays[f"running/{layer.name}/var"] = layer.running_var.copy()
    return arrays


def model_from_arrays(arrays: dict[str, np.ndarray]) -> Sequential:
    """Rebuild a model from :func:`model_to_arrays` output."""
    if _CONFIG_KEY not in arrays:
        raise ConfigurationError("archive does not contain an architecture description")
    config = json.loads(bytes(arrays[_CONFIG_KEY].astype(np.uint8)).decode("utf-8"))
    model = Sequential.from_config(config)
    for layer_name, param_name, value in model.named_parameters():
        key = f"param/{layer_name}/{param_name}"
        if key not in arrays:
            raise ConfigurationError(f"archive is missing parameter {key!r}")
        stored = np.asarray(arrays[key], dtype=np.float64)
        if stored.shape != value.shape:
            raise ConfigurationError(
                f"parameter {key} has shape {stored.shape}, expected {value.shape}"
            )
        value[...] = stored
    for layer in model.layers:
        if isinstance(layer, BatchNorm1D):
            mean_key = f"running/{layer.name}/mean"
            var_key = f"running/{layer.name}/var"
            if mean_key in arrays:
                layer.running_mean = np.asarray(arrays[mean_key], dtype=np.float64).copy()
            if var_key in arrays:
                layer.running_var = np.asarray(arrays[var_key], dtype=np.float64).copy()
    return model


def save_model(model: Sequential, path: str | Path) -> Path:
    """Serialise ``model`` to a ``.npz`` archive and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **model_to_arrays(model))
    # np.savez appends .npz when missing; normalise the returned path.
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def load_model(path: str | Path) -> Sequential:
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists() and path.with_name(path.name + ".npz").exists():
        path = path.with_name(path.name + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files}
    return model_from_arrays(arrays)
