"""The :class:`Sequential` model container.

Besides the usual forward / backward / predict interface, the container
exposes the hooks the fault-sneaking attack relies on:

* :meth:`Sequential.logits` — the input to the final softmax layer (eq. (3)
  of the paper operates on logits, not probabilities);
* :meth:`Sequential.forward_between` — run an arbitrary slice of layers,
  which lets the attack cache the activations feeding the attacked layer;
* :meth:`Sequential.named_parameters` and in-place writable
  ``layer.params[...]`` arrays — the attack mutates parameters directly;
* :meth:`Sequential.snapshot` / :meth:`Sequential.restore` — cheap state
  save/restore around an attack or fault-injection campaign.
"""

from __future__ import annotations

import copy as _copy
from typing import Iterator, Sequence

import numpy as np

from repro.nn.layers import Layer, Softmax, layer_from_config
from repro.nn.metrics import accuracy as _accuracy
from repro.utils.errors import ConfigurationError

__all__ = ["Sequential"]


class Sequential:
    """A feed-forward stack of layers executed in order.

    Parameters
    ----------
    layers:
        The layers, executed first to last.  Layer names must be unique; a
        duplicate name gets a numeric suffix appended automatically.
    name:
        Optional model name used in reprs and serialised archives.
    """

    def __init__(self, layers: Sequence[Layer], *, name: str = "sequential"):
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        self.name = name
        self.layers: list[Layer] = list(layers)
        self._uniquify_names()

    # -- construction helpers -------------------------------------------------
    def _uniquify_names(self) -> None:
        seen: dict[str, int] = {}
        for layer in self.layers:
            base = layer.name
            if base not in seen:
                seen[base] = 0
                continue
            seen[base] += 1
            layer.name = f"{base}_{seen[base]}"
            seen[layer.name] = 0

    # -- inference -------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full network, including any trailing softmax."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    @property
    def logits_end(self) -> int:
        """Index one past the last layer that produces logits.

        If the network ends with a :class:`Softmax` layer, logits are the
        input to that layer; otherwise the final layer output already is the
        logit vector.
        """
        if self.layers and isinstance(self.layers[-1], Softmax):
            return len(self.layers) - 1
        return len(self.layers)

    def logits(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Return the pre-softmax class scores ``Z(θ, x)``."""
        return self.forward_between(x, 0, self.logits_end, training=training)

    def forward_between(
        self, x: np.ndarray, start: int = 0, stop: int | None = None, training: bool = False
    ) -> np.ndarray:
        """Run only ``self.layers[start:stop]`` on ``x``.

        Used by the attack's feature cache: activations below the first
        attacked layer are computed once, then only the suffix is re-run as
        the parameter modification evolves.
        """
        stop = len(self.layers) if stop is None else stop
        if not 0 <= start <= stop <= len(self.layers):
            raise ConfigurationError(
                f"invalid layer slice [{start}, {stop}) for a model with "
                f"{len(self.layers)} layers"
            )
        out = x
        for layer in self.layers[start:stop]:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray, *, batch_size: int = 256) -> np.ndarray:
        """Return predicted integer labels for a batch of inputs."""
        return np.argmax(self.predict_logits(x, batch_size=batch_size), axis=1)

    def predict_logits(self, x: np.ndarray, *, batch_size: int = 256) -> np.ndarray:
        """Return logits, evaluated in mini-batches to bound memory use."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.logits(x[start : start + batch_size]))
        return np.concatenate(outputs, axis=0)

    def predict_proba(self, x: np.ndarray, *, batch_size: int = 256) -> np.ndarray:
        """Return softmax probabilities for a batch of inputs."""
        logits = self.predict_logits(x, batch_size=batch_size)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def evaluate(self, x: np.ndarray, y: np.ndarray, *, batch_size: int = 256) -> float:
        """Return classification accuracy on ``(x, y)``."""
        return _accuracy(y, self.predict(x, batch_size=batch_size))

    # -- training support --------------------------------------------------------
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient from the final layer to the input."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def backward_between(
        self, grad_output: np.ndarray, start: int = 0, stop: int | None = None
    ) -> np.ndarray:
        """Backpropagate through only ``self.layers[start:stop]``."""
        stop = len(self.layers) if stop is None else stop
        grad = grad_output
        for layer in reversed(self.layers[start:stop]):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        """Reset parameter gradients on every layer."""
        for layer in self.layers:
            layer.zero_grads()

    # -- parameter access ---------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Total number of trainable scalars in the model."""
        return sum(layer.n_params for layer in self.layers)

    def get_layer(self, name: str) -> Layer:
        """Return the layer with the given name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}; available: {[l.name for l in self.layers]}")

    def layer_index(self, name: str) -> int:
        """Return the positional index of the layer with the given name."""
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise KeyError(f"no layer named {name!r}")

    def trainable_layers(self) -> list[Layer]:
        """Return layers holding at least one trainable parameter."""
        return [layer for layer in self.layers if layer.params]

    def named_parameters(self) -> Iterator[tuple[str, str, np.ndarray]]:
        """Yield ``(layer_name, param_name, array)`` for every parameter."""
        for layer in self.layers:
            for param_name, value in layer.params.items():
                yield layer.name, param_name, value

    def snapshot(self) -> dict[str, np.ndarray]:
        """Return a deep copy of every parameter, keyed by ``layer/param``."""
        return {
            f"{layer_name}/{param_name}": value.copy()
            for layer_name, param_name, value in self.named_parameters()
        }

    def restore(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from a :meth:`snapshot` dictionary (in place)."""
        for layer_name, param_name, value in self.named_parameters():
            key = f"{layer_name}/{param_name}"
            if key not in state:
                raise KeyError(f"snapshot is missing parameter {key!r}")
            stored = state[key]
            if stored.shape != value.shape:
                raise ConfigurationError(
                    f"snapshot shape mismatch for {key}: {stored.shape} vs {value.shape}"
                )
            value[...] = stored

    def copy(self) -> "Sequential":
        """Return an independent deep copy of the model (structure + weights)."""
        return _copy.deepcopy(self)

    # -- description -------------------------------------------------------------
    def get_config(self) -> dict:
        """Return a serialisable description of the architecture."""
        return {
            "name": self.name,
            "layers": [layer.get_config() for layer in self.layers],
        }

    @classmethod
    def from_config(cls, config: dict) -> "Sequential":
        """Rebuild an (untrained) model from :meth:`get_config` output."""
        layers = [layer_from_config(layer_cfg) for layer_cfg in config["layers"]]
        return cls(layers, name=config.get("name", "sequential"))

    def summary(self) -> str:
        """Return a human-readable, layer-by-layer summary table."""
        lines = [f"Model {self.name!r} — {self.n_params:,} parameters", "-" * 60]
        for index, layer in enumerate(self.layers):
            lines.append(
                f"{index:>3}  {layer.__class__.__name__:<12} {layer.name:<24} "
                f"{layer.n_params:>12,}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Sequential(name={self.name!r}, layers={len(self.layers)}, "
            f"n_params={self.n_params})"
        )
