"""im2col / col2im helpers for convolution and pooling layers.

Images use the NHWC layout (batch, height, width, channels).  The im2col
transform unrolls every receptive field into a row so that a convolution
becomes a single matrix multiplication, which is the only way to get
acceptable CPU performance out of pure numpy.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ShapeError

__all__ = ["conv_output_size", "im2col", "col2im", "pad_nhwc"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Return the spatial output size of a convolution/pooling dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size is not positive: input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def pad_nhwc(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NHWC tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (padding, padding), (padding, padding), (0, 0)))


def _window_indices(height: int, width: int, kernel: int, stride: int, out_h: int, out_w: int):
    """Return (row, col) index grids selecting every receptive field."""
    del height, width
    i0 = np.repeat(np.arange(kernel), kernel)
    j0 = np.tile(np.arange(kernel), kernel)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(1, -1) + i1.reshape(-1, 1)
    cols = j0.reshape(1, -1) + j1.reshape(-1, 1)
    return rows, cols


def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unroll NHWC input patches into a 2-D matrix.

    Parameters
    ----------
    x:
        Input of shape ``(N, H, W, C)``.
    kernel, stride, padding:
        Square kernel size, stride and symmetric zero padding.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, kernel * kernel * C)``.  Each row
        is one receptive field with channel-last ordering inside the patch.
    (out_h, out_w):
        Spatial output size.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NHWC input, got shape {x.shape}")
    n, h, w, c = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    x_padded = pad_nhwc(x, padding)

    rows, cols_idx = _window_indices(h, w, kernel, stride, out_h, out_w)
    # patches: (N, out_h*out_w, kernel*kernel, C)
    patches = x_padded[:, rows, cols_idx, :]
    cols = patches.reshape(n * out_h * out_w, kernel * kernel * c)
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch rows back into an image.

    Overlapping regions accumulate, which is exactly the gradient of the
    im2col gather operation.
    """
    n, h, w, c = input_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    expected_rows = n * out_h * out_w
    if cols.shape[0] != expected_rows:
        raise ShapeError(
            f"col2im received {cols.shape[0]} rows but expected {expected_rows}"
        )

    padded = np.zeros((n, h + 2 * padding, w + 2 * padding, c), dtype=cols.dtype)
    patches = cols.reshape(n, out_h * out_w, kernel * kernel, c)
    rows, cols_idx = _window_indices(h, w, kernel, stride, out_h, out_w)
    # np.add.at performs unbuffered scatter-add over the repeated indices.
    np.add.at(padded, (slice(None), rows, cols_idx, slice(None)), patches)
    if padding == 0:
        return padded
    return padded[:, padding:-padding, padding:-padding, :]
