"""A self-contained numpy neural-network library.

This package is the DNN substrate used by the fault-sneaking attack
reproduction: it provides forward inference, backpropagation, training and
(de)serialisation for feed-forward convolutional networks, with the layer
parameter access hooks the attack needs (named parameters, per-parameter
gradients, logits before the softmax layer).
"""

from repro.nn.initializers import (
    glorot_uniform,
    he_normal,
    he_uniform,
    normal_init,
    zeros_init,
)
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.losses import CrossEntropyLoss, HingeLogitLoss, Loss, MSELoss
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSProp
from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy
from repro.nn.serialization import load_model, save_model, model_to_arrays, model_from_arrays
from repro.nn.quantization import QuantizationSpec, dequantize, quantize

__all__ = [
    # initializers
    "glorot_uniform",
    "he_normal",
    "he_uniform",
    "normal_init",
    "zeros_init",
    # layers
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm1D",
    # losses
    "Loss",
    "CrossEntropyLoss",
    "MSELoss",
    "HingeLogitLoss",
    # model / optim
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    # metrics
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    # serialization
    "save_model",
    "load_model",
    "model_to_arrays",
    "model_from_arrays",
    # quantization
    "QuantizationSpec",
    "quantize",
    "dequantize",
]
