"""A small keyed disk cache used to avoid retraining models between runs.

The cache stores numpy archives keyed by a stable hash of a configuration
dictionary.  It is intentionally simple: no eviction, no locking beyond
atomic rename, because entries are tiny (a few MB of float32 weights).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path, PurePath
from typing import Any

import numpy as np

__all__ = ["DiskCache", "default_cache_dir", "stable_hash"]


def default_cache_dir() -> Path:
    """Return the default on-disk cache directory.

    Respects ``REPRO_CACHE_DIR`` so tests and CI can redirect it.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-fault-sneaking"


def _canonical(value: Any, path: str) -> Any:
    """Reduce a config value to JSON-native types, rejecting ambiguous ones.

    An earlier implementation fell back to ``str()`` for unknown types, which
    silently corrupted cache keying in both directions: two distinct objects
    with an equal repr collided onto one key, and reprs embedding a memory
    address (``<object at 0x...>``) changed every run so identical configs
    never hit the cache.  Only values with one canonical encoding are allowed;
    numpy scalars and filesystem paths are normalised explicitly.
    """
    # bool is an int subclass; both pass through as themselves.
    if value is None or isinstance(value, (str, int, float)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, PurePath):
        return str(value)
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"stable_hash: non-string dict key {key!r} at {path}"
                )
        return {key: _canonical(item, f"{path}.{key}") for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item, f"{path}[{i}]") for i, item in enumerate(value)]
    raise TypeError(
        f"stable_hash: value of type {type(value).__name__} at {path} has no "
        "canonical encoding; convert it to JSON-native types (str/int/float/"
        "bool/None, lists, string-keyed dicts) before hashing"
    )


def stable_hash(config: dict[str, Any]) -> str:
    """Return a stable hex digest of a configuration dictionary.

    Values must be canonically encodable: JSON-native types plus numpy
    scalars and :class:`pathlib` paths (normalised explicitly).  Anything
    else raises :class:`TypeError` instead of silently hashing by ``str()``.
    """
    encoded = json.dumps(_canonical(config, "config"), sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:24]


class DiskCache:
    """Store and retrieve dictionaries of numpy arrays keyed by config hashes.

    Parameters
    ----------
    directory:
        Cache root; created lazily on first write.  ``None`` uses
        :func:`default_cache_dir`.
    enabled:
        When ``False`` every lookup misses and writes are dropped, which is
        convenient for tests.
    shard_levels:
        Number of two-hex-character directory levels between the root and
        each entry (``0`` keeps the historical flat layout).  A store of
        millions of memoized campaign cells keeps O(1) lookups with two
        levels (``ab/cd/abcd....json``); without sharding a single flat
        directory degrades on most filesystems.  Lookups in a sharded cache
        fall back to the flat path, so pre-existing flat stores stay
        readable in place.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        enabled: bool = True,
        shard_levels: int = 0,
    ):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.enabled = enabled
        if shard_levels < 0 or shard_levels > 4:
            raise ValueError(f"shard_levels must be in [0, 4], got {shard_levels}")
        self.shard_levels = shard_levels

    def _entry_path(self, key: str, suffix: str) -> Path:
        base = self.directory
        for level in range(self.shard_levels):
            base = base / key[2 * level : 2 * level + 2]
        return base / f"{key}{suffix}"

    def _lookup_path(self, key: str, suffix: str) -> Path:
        """Resolve reads: the sharded path, or the legacy flat one if only
        that exists (stores written before sharding was enabled)."""
        path = self._entry_path(key, suffix)
        if self.shard_levels and not path.exists():
            flat = self.directory / f"{key}{suffix}"
            if flat.exists():
                return flat
        return path

    def _path_for(self, key: str) -> Path:
        return self._lookup_path(key, ".npz")

    def key_for(self, config: dict[str, Any]) -> str:
        """Return the cache key for a configuration dictionary."""
        return stable_hash(config)

    def contains(self, key: str) -> bool:
        """Return whether an entry exists for ``key``."""
        return self.enabled and self._path_for(key).exists()

    def load(self, key: str) -> dict[str, np.ndarray] | None:
        """Load the arrays stored under ``key`` or ``None`` on a miss."""
        if not self.contains(key):
            return None
        path = self._path_for(key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError):
            # Corrupt entry: treat as a miss and let the caller regenerate it.
            return None

    def store(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Atomically store a dictionary of arrays under ``key``."""
        if not self.enabled:
            return
        path = self._entry_path(key, ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    # -- JSON payloads ---------------------------------------------------------------
    # Campaign artifacts are small dictionaries of scalars rather than weight
    # arrays; they share the same keyed directory and atomic-rename discipline
    # but live in ``.json`` files so they stay human-inspectable.

    def _json_path_for(self, key: str) -> Path:
        return self._lookup_path(key, ".json")

    def contains_json(self, key: str) -> bool:
        """Return whether a JSON entry exists for ``key``."""
        return self.enabled and self._json_path_for(key).exists()

    def load_json(self, key: str) -> dict[str, Any] | None:
        """Load the JSON payload stored under ``key`` or ``None`` on a miss."""
        if not self.contains_json(key):
            return None
        try:
            payload = json.loads(self._json_path_for(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Corrupt entry (e.g. an interrupted write on a filesystem without
            # atomic rename): treat as a miss and let the caller regenerate it.
            return None
        # store_json only ever writes objects; anything else is a corrupt or
        # foreign file squatting on the key, so treat it as a miss too.
        if not isinstance(payload, dict):
            return None
        return payload

    def store_json(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically store a JSON-serialisable payload under ``key``.

        Writes strict RFC 8259 JSON: non-finite floats are rejected rather
        than silently emitted as the non-standard ``NaN``/``Infinity`` tokens
        (callers encode such sentinels as ``null`` before storing).
        """
        if not self.enabled:
            return
        path = self._entry_path(key, ".json")
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(payload, sort_keys=True, default=str, allow_nan=False)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def clear(self) -> int:
        """Delete every cache entry; return the number of removed files."""
        if not self.directory.exists():
            return 0
        removed = 0
        for pattern in ("*.npz", "*.json"):
            # rglob covers the flat layout and every shard level.
            for entry in self.directory.rglob(pattern):
                entry.unlink()
                removed += 1
        return removed
