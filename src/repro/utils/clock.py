"""The one sanctioned wall-clock access point of the library.

Job results, cache keys and canonical manifests must be pure functions of
the job spec — ``repro-lint`` rule RPL002 rejects direct ``time.time()`` /
``datetime.now()`` reads anywhere in ``src/``.  Operator-facing surfaces
(the CLI's "completed in N s" line, log timestamps) still legitimately want
the wall clock; they get it from here, so every clock read in the codebase
is findable at one call site and auditable against the determinism
invariant.  Elapsed/duration measurement should prefer ``time.monotonic``
or ``time.perf_counter``, which RPL002 permits everywhere.
"""

from __future__ import annotations

import time

__all__ = ["wall_clock"]


def wall_clock() -> float:
    """Seconds since the epoch, for operator-facing timing and display only.

    Never feed this into anything content-hashed (job metrics, artifact
    keys, canonical manifests): two executors running the same spec at
    different times must still produce byte-identical results.
    """
    return time.time()  # repro: allow-wallclock
