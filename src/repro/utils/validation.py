"""Argument validation helpers shared by the public API surface.

They raise early with messages naming the offending argument so that failures
surface at the call site rather than deep inside numpy broadcasting.
"""

from __future__ import annotations

import numbers
from typing import Any

import numpy as np

from repro.utils.errors import ShapeError

__all__ = ["check_array", "check_positive", "check_probability", "check_in_range"]


def check_array(
    value: Any,
    *,
    name: str,
    ndim: int | tuple[int, ...] | None = None,
    dtype: Any = np.float64,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate its dimensionality.

    Parameters
    ----------
    value:
        Array-like input.
    name:
        Argument name used in error messages.
    ndim:
        Required number of dimensions (or tuple of allowed values).
    dtype:
        Target dtype; ``None`` keeps the input dtype.
    allow_empty:
        Whether a zero-sized array is acceptable.
    """
    arr = np.asarray(value, dtype=dtype)
    if ndim is not None:
        allowed = (ndim,) if isinstance(ndim, int) else tuple(ndim)
        if arr.ndim not in allowed:
            raise ShapeError(
                f"{name} must have ndim in {allowed}, got ndim={arr.ndim} "
                f"with shape {arr.shape}"
            )
    if not allow_empty and arr.size == 0:
        raise ShapeError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_positive(value: Any, *, name: str, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) scalar."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: Any, *, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    return check_in_range(value, low=0.0, high=1.0, name=name)


def check_in_range(value: Any, *, low: float, high: float, name: str) -> float:
    """Validate that a scalar lies in ``[low, high]``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
