"""Exception and warning types used across the library.

A small, explicit hierarchy so that callers can either catch the broad
:class:`ReproError` or a specific subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An object was configured with invalid or inconsistent options.

    Also a :class:`ValueError`: an invalid option *is* an invalid value, and
    callers holding only standard-library expectations (e.g. the campaign
    executor factory's unknown-backend rejection) can catch it without
    importing this module.
    """


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NotFittedError(ReproError):
    """A component was used before it was trained / prepared."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before meeting its convergence criterion."""
