"""Exception and warning types used across the library.

A small, explicit hierarchy so that callers can either catch the broad
:class:`ReproError` or a specific subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent options."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NotFittedError(ReproError):
    """A component was used before it was trained / prepared."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before meeting its convergence criterion."""
