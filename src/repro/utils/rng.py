"""Random-number utilities.

Everything in this library is deterministic given a seed.  Components accept
either an integer seed, ``None`` (fresh entropy) or an existing
:class:`numpy.random.Generator`; :func:`RandomState` normalises all three.
"""

from __future__ import annotations

import random

import numpy as np

from repro.utils.cache import stable_hash

__all__ = ["RandomState", "derive_seed", "fork_rng", "seed_everything"]

# Upper bound (exclusive) for child seeds produced by :func:`fork_rng`.
_MAX_SEED = 2**31 - 1


def RandomState(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` for a reproducible stream,
        or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(*components: object) -> int:
    """Derive a reproducible seed from arbitrary JSON-serialisable components.

    Unlike the built-in ``hash`` this is stable across processes and Python
    invocations (no hash randomisation), which is what makes it safe for
    seeding parallel workers: a job receives the same seed whether it runs
    in the parent process, a pool worker, or a resumed campaign.  The
    canonical encoding is shared with :func:`repro.utils.cache.stable_hash`
    so a job's seed and its artifact-store key can never drift apart.
    """
    return int(stable_hash({"seed-components": components}), 16) % _MAX_SEED


def fork_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    The children are seeded from draws of the parent so that forking is itself
    reproducible and the parent can continue to be used afterwards.
    """
    if n < 0:
        raise ValueError(f"cannot fork a negative number of generators: {n}")
    seeds = rng.integers(0, _MAX_SEED, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed both the stdlib and numpy global generators and return a Generator.

    Library code never uses global random state, but user scripts and examples
    may; this makes a whole run reproducible with one call.
    """
    random.seed(seed)
    # Legacy global numpy state, seeded only for third-party/user code that
    # still reads it.  This module is the sole repro-lint (RPL001) allowlisted
    # caller; library code must thread the returned Generator instead.
    np.random.seed(seed % (2**32))
    return np.random.default_rng(seed)
