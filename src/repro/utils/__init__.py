"""Shared utilities: seeding, logging, configuration helpers and errors."""

from repro.utils.rng import RandomState, fork_rng, seed_everything
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    check_probability,
)
from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    ConvergenceWarning,
    ShapeError,
)
from repro.utils.cache import DiskCache, default_cache_dir
from repro.utils.clock import wall_clock

__all__ = [
    "RandomState",
    "fork_rng",
    "seed_everything",
    "get_logger",
    "set_verbosity",
    "check_array",
    "check_in_range",
    "check_positive",
    "check_probability",
    "ReproError",
    "ConfigurationError",
    "ConvergenceWarning",
    "ShapeError",
    "DiskCache",
    "default_cache_dir",
    "wall_clock",
]
