"""Thin wrapper around :mod:`logging` with a library-wide namespace.

All loggers live under the ``repro`` root logger so that
``set_verbosity("debug")`` affects the whole library without touching the
application's root logger configuration.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "silent": logging.CRITICAL + 10,
}


def _root_logger() -> logging.Logger:
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(levelname)s %(name)s] %(message)s")
        )
        logger.addHandler(handler)
        logger.setLevel(logging.WARNING)
        logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the library namespace, e.g. ``repro.attacks``."""
    _root_logger()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: str | int) -> None:
    """Set the verbosity of all library loggers.

    Parameters
    ----------
    level:
        One of ``"debug"``, ``"info"``, ``"warning"``, ``"error"``,
        ``"silent"`` or a :mod:`logging` numeric level.
    """
    if isinstance(level, str):
        try:
            level = _LEVELS[level.lower()]
        except KeyError as exc:
            raise ValueError(
                f"unknown verbosity {level!r}; expected one of {sorted(_LEVELS)}"
            ) from exc
    _root_logger().setLevel(level)
