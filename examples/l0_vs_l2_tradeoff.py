#!/usr/bin/env python3
"""Scenario: choose between the ℓ0 and ℓ2 attack variants for a hardware budget.

The ℓ0-based attack minimises *how many* parameters change (few memory words
to touch — cheap for laser/row-hammer injection); the ℓ2-based attack
minimises *how much* they change in aggregate.  This example runs both on the
same attack plan and compares:

* the modification norms (the paper's Table 3),
* the resulting test accuracy,
* the simulated memory-level cost of actually injecting each modification
  (bit flips, DRAM rows to hammer, estimated effort).

Run with::

    python examples/l0_vs_l2_tradeoff.py
"""

from __future__ import annotations

from repro import evaluate_attack_result, make_attack_plan
from repro.analysis.reporting import Table
from repro.attacks import FaultSneakingAttack, FaultSneakingConfig
from repro.experiments.common import get_trained_model
from repro.hardware import FaultInjectionCampaign, LaserBeamInjector, RowHammerInjector


def main() -> None:
    trained = get_trained_model("mnist_like", scale="ci", seed=0)
    model = trained.model
    test_set = trained.data.test
    plan = make_attack_plan(test_set, num_targets=4, num_images=100, seed=42)
    print(f"Victim accuracy {trained.test_accuracy:.3f}; attack plan {plan.describe()}\n")

    table = Table(
        title="l0 vs l2 fault sneaking attack on the last FC layer",
        columns=[
            "attack",
            "l0 (params changed)",
            "l2 (magnitude)",
            "success",
            "test accuracy",
            "bit flips",
            "DRAM rows",
            "rowhammer hours",
            "laser hours",
        ],
    )

    for norm in ("l0", "l2"):
        # The l2 variant does not sparsify, so it needs no hinge margin.
        config = FaultSneakingConfig(norm=norm, kappa=1.0 if norm == "l0" else 0.0)
        result = FaultSneakingAttack(model, config).attack(plan)
        evaluation = evaluate_attack_result(
            result, test_set, clean_model=model, clean_accuracy=trained.test_accuracy
        )
        rowhammer_report = FaultInjectionCampaign(injector=RowHammerInjector()).run(result)
        laser_report = FaultInjectionCampaign(injector=LaserBeamInjector()).run(result)
        table.add_row(
            f"{norm} attack",
            evaluation.l0_norm,
            evaluation.l2_norm,
            evaluation.success_rate,
            evaluation.attacked_test_accuracy,
            rowhammer_report.plan.num_flips,
            rowhammer_report.plan.num_rows_touched,
            rowhammer_report.cost.time_seconds / 3600.0,
            laser_report.cost.time_seconds / 3600.0,
        )

    print(table.render("text"))
    print(
        "\nThe l0 attack touches far fewer memory words, which is what makes the"
        " physical fault injection practical; the l2 attack spreads a smaller"
        " total magnitude over almost every parameter of the layer."
    )


if __name__ == "__main__":
    main()
