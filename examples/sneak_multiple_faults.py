#!/usr/bin/env python3
"""Scenario: hide several targeted misclassifications in a deployed model.

This is the paper's motivating use case — an adversary wants a handful of
specific inputs (e.g. particular faces or traffic signs) to be classified as
labels of their choosing, while the model keeps behaving normally for
everything else so the tampering is not detected.

The script sweeps the number of injected faults ``S`` and shows how the
stealth constraint (the ``R − S`` keep images) preserves test accuracy, and
where the model's fault tolerance (§5.5 of the paper) starts to bite.

Run with::

    python examples/sneak_multiple_faults.py
"""

from __future__ import annotations

from repro import evaluate_attack_result, make_attack_plan
from repro.analysis.reporting import Table
from repro.attacks import FaultSneakingAttack, FaultSneakingConfig
from repro.experiments.common import get_trained_model


def main() -> None:
    trained = get_trained_model("mnist_like", scale="ci", seed=0)
    model = trained.model
    test_set = trained.data.test
    print(f"Victim model accuracy: {trained.test_accuracy:.3f}")

    table = Table(
        title="Sneaking an increasing number of faults (R = 200 anchor images)",
        columns=[
            "S (faults)",
            "successful faults",
            "success rate",
            "keep rate",
            "modified params",
            "test accuracy",
        ],
    )

    config = FaultSneakingConfig(norm="l0", layers=("fc_logits",))
    attack = FaultSneakingAttack(model, config)
    num_images = min(200, len(test_set))
    for s in (1, 2, 4, 8, 12):
        plan = make_attack_plan(
            test_set,
            num_targets=s,
            num_images=num_images,
            target_strategy="random",
            seed=100 + s,
        )
        result = attack.attack(plan)
        evaluation = evaluate_attack_result(
            result, test_set, clean_model=model, clean_accuracy=trained.test_accuracy
        )
        table.add_row(
            s,
            evaluation.num_successful_faults,
            evaluation.success_rate,
            evaluation.keep_rate,
            evaluation.l0_norm,
            evaluation.attacked_test_accuracy,
        )

    print()
    print(table.render("text"))
    print(
        "\nNote how the accuracy stays close to the clean model even as several"
        " faults are injected — that is the 'sneaking' part of the attack."
    )


if __name__ == "__main__":
    main()
