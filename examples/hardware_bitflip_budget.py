#!/usr/bin/env python3
"""Scenario: plan a row-hammer campaign against a deployed model.

An attacker who can hammer DRAM wants to know, before touching the hardware:

* exactly which parameter words must change and by how many bits,
* how many victim rows have to be hammered,
* whether the per-row controlled-flip limit makes the plan feasible at all,
* what the model will do once the (quantised) modification lands in memory.

This example computes a fault-sneaking modification, lowers it to a bit-flip
plan under float32 and float16 parameter storage, and verifies the attack on
the model rebuilt from the simulated memory.

Run with::

    python examples/hardware_bitflip_budget.py
"""

from __future__ import annotations

from repro import make_attack_plan
from repro.analysis.reporting import Table
from repro.attacks import FaultSneakingAttack, FaultSneakingConfig
from repro.experiments.common import get_trained_model
from repro.hardware import (
    FaultInjectionCampaign,
    MemoryLayout,
    RowHammerInjector,
)
from repro.nn.quantization import QuantizationSpec


def main() -> None:
    trained = get_trained_model("mnist_like", scale="ci", seed=0)
    model = trained.model
    test_set = trained.data.test
    plan = make_attack_plan(test_set, num_targets=2, num_images=100, seed=7)

    print("Computing the fault-sneaking modification (l0 attack, last FC layer) ...")
    result = FaultSneakingAttack(model, FaultSneakingConfig(norm="l0")).attack(plan)
    print(f"  {result.summary()}\n")

    table = Table(
        title="Row-hammer campaign budget for the computed modification",
        columns=[
            "storage format",
            "row size (bytes)",
            "words touched",
            "bit flips",
            "rows to hammer",
            "feasible",
            "est. hours",
            "post-injection success",
            "post-injection keep rate",
            "quantisation error",
        ],
    )

    for storage in ("float32", "float16"):
        for row_bytes in (4096, 8192):
            campaign = FaultInjectionCampaign(
                injector=RowHammerInjector(max_flips_per_row=32),
                spec=QuantizationSpec(storage),
                layout=MemoryLayout(row_bytes=row_bytes),
            )
            report = campaign.run(result)
            table.add_row(
                storage,
                row_bytes,
                report.plan.num_words_touched,
                report.plan.num_flips,
                report.plan.num_rows_touched,
                report.cost.feasible,
                report.cost.time_seconds / 3600.0,
                report.success_rate,
                report.keep_rate,
                report.quantization_error,
            )

    print(table.render("text"))
    print(
        "\nfloat16 storage halves the memory footprint, so the same modification"
        " concentrates into fewer rows; the quantisation error column confirms the"
        " attack still lands within the representable precision."
    )


if __name__ == "__main__":
    main()
