#!/usr/bin/env python3
"""Quickstart: sneak two faults into a small CNN and measure the damage.

Pipeline demonstrated:

1. generate the synthetic MNIST-like dataset and train the victim CNN
   (cached, so re-running the example is fast),
2. pick ``S = 2`` images to misclassify and ``R − S = 48`` images whose
   classification must not change,
3. run the ℓ0 fault sneaking attack on the last fully connected layer,
4. report the modification size, the attack success and the test-accuracy
   retention.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import evaluate_attack_result, make_attack_plan
from repro.attacks import FaultSneakingAttack, FaultSneakingConfig
from repro.experiments.common import get_trained_model


def main() -> None:
    print("Training (or loading) the MNIST-like victim model ...")
    trained = get_trained_model("mnist_like", scale="ci", seed=0)
    model = trained.model
    test_set = trained.data.test
    print(f"  clean test accuracy: {trained.test_accuracy:.3f}")
    print(f"  model: {model.name} with {model.n_params:,} parameters")

    plan = make_attack_plan(test_set, num_targets=2, num_images=50, seed=0)
    print(f"\nAttack plan: {plan.describe()}")
    for i in range(plan.num_targets):
        print(
            f"  image {i}: true label {plan.true_labels[i]} "
            f"-> target label {plan.target_labels[i]}"
        )

    config = FaultSneakingConfig(norm="l0", layers=("fc_logits",))
    attack = FaultSneakingAttack(model, config)
    result = attack.attack(plan)
    print(f"\n{result.summary()}")

    evaluation = evaluate_attack_result(
        result, test_set, clean_model=model, clean_accuracy=trained.test_accuracy
    )
    print("\nEvaluation against the full test set:")
    print(f"  modified parameters (l0): {evaluation.l0_norm}")
    print(f"  modification magnitude (l2): {evaluation.l2_norm:.3f}")
    print(f"  attack success rate:      {evaluation.success_rate:.0%}")
    print(f"  keep rate (R-S images):   {evaluation.keep_rate:.0%}")
    print(
        f"  test accuracy: {evaluation.clean_test_accuracy:.3f} -> "
        f"{evaluation.attacked_test_accuracy:.3f} "
        f"({evaluation.accuracy_drop_percent:.2f} point drop)"
    )

    hacked = result.modified_model()
    predictions = hacked.predict(plan.target_images)
    print("\nPredictions of the modified model on the target images:", predictions.tolist())


if __name__ == "__main__":
    main()
