#!/usr/bin/env python3
"""Scenario: compare the fault sneaking attack against the Liu et al. baselines.

Reproduces the paper's §5.4 argument on the CI-scale models: for the same
requirement (misclassify one chosen image), the ADMM-based fault sneaking
attack keeps the model's test accuracy essentially intact, whereas the
single-bias attack (SBA) and the gradient-descent attack (GDA) of Liu et al.
(ICCAD 2017) cause a noticeably larger accuracy drop because they have no
mechanism to pin the classification of other images.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.experiments import baseline_comparison


def main() -> None:
    table = baseline_comparison.run(scale="ci", seed=0)
    print(table.render("text"))
    print(
        "\nThe 'accuracy drop' column is the number the paper's §5.4 compares:"
        " 0.8 points (fault sneaking) vs 3.86 points ([16]) on MNIST."
    )


if __name__ == "__main__":
    main()
